"""Fault primitives: what the chaos engine can do to a running ESCAPE.

Each :class:`Fault` is one declarative entry of a scenario: *when* it
fires (``at``, seconds after the engine is armed), *what* it targets
(an explicit name, or ``"random"`` for a seeded pick among
:meth:`candidates`), and — for revertible faults — *how long* it lasts
(``duration``; ``None`` leaves it in place).

``inject`` returns an opaque undo-state that ``heal`` consumes, so a
fault can restore exactly what it changed (e.g. the pre-degradation
loss/delay of a link).  Candidate lists are always sorted: with a
seeded RNG the same scenario resolves to the same targets every run.
"""

from typing import Any, Dict, List, Optional

from repro.netem.vnf import UP as VNF_UP


class FaultError(Exception):
    """Bad fault parameters or an unresolvable target."""


class Fault:
    """One scheduled fault of a chaos scenario."""

    kind = "fault"

    def __init__(self, at: float, target: Optional[str] = None,
                 duration: Optional[float] = None):
        if at < 0:
            raise FaultError("fault time must be non-negative, got %r"
                             % at)
        if duration is not None and duration <= 0:
            raise FaultError("fault duration must be positive, got %r"
                             % duration)
        self.at = at
        self.target = target
        self.duration = duration

    def candidates(self, escape) -> List[str]:
        """Sorted names this fault could target right now."""
        raise NotImplementedError

    def inject(self, escape, target: str) -> Any:
        """Apply the fault; returns undo-state for :meth:`heal`."""
        raise NotImplementedError

    def heal(self, escape, target: str, state: Any) -> None:
        """Revert the fault (no-op for one-shot faults like crashes)."""

    def describe(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind, "at": self.at}
        if self.target is not None:
            data["target"] = self.target
        if self.duration is not None:
            data["duration"] = self.duration
        return data

    def __repr__(self) -> str:
        return "%s(at=%.3f, target=%r)" % (type(self).__name__, self.at,
                                           self.target)


def _dataplane_links(escape) -> List[str]:
    """Links whose both endpoints are in the orchestrator's view —
    i.e. the data plane, not the inband management hub."""
    graph = escape.orchestrator.view.graph
    return sorted(link.name for link in escape.net.links
                  if link.intf1.node.name in graph
                  and link.intf2.node.name in graph)


class LinkDownFault(Fault):
    """Take a link down; heals by bringing it back up."""

    kind = "link_down"

    def candidates(self, escape) -> List[str]:
        return [name for name in _dataplane_links(escape)
                if escape.net.find_link(name).up]

    def inject(self, escape, target: str) -> Any:
        escape.net.find_link(target).set_up(False)
        return None

    def heal(self, escape, target: str, state: Any) -> None:
        escape.net.find_link(target).set_up(True)


class LinkFlapFault(Fault):
    """Flap a link: repeated down/up cycles, one per ``period``
    seconds, ``flaps`` times — the pathological carrier bounce that
    reactive recovery chases and proactive protection rides out.

    Each cycle holds the link down for half a period.  Healing cancels
    any cycles still pending and leaves the link up.  All cycles ride
    the simulator clock from one seeded injection, so the flap timeline
    is deterministic per scenario seed.
    """

    kind = "link_flap"

    def __init__(self, at: float, target: Optional[str] = None,
                 duration: Optional[float] = None,
                 period: float = 0.5, flaps: int = 3):
        super().__init__(at, target, duration)
        if period <= 0:
            raise FaultError("flap period must be positive, got %r"
                             % period)
        if flaps < 1:
            raise FaultError("flaps must be at least 1, got %r" % flaps)
        self.period = period
        self.flaps = flaps

    def candidates(self, escape) -> List[str]:
        return [name for name in _dataplane_links(escape)
                if escape.net.find_link(name).up]

    def inject(self, escape, target: str) -> Any:
        link = escape.net.find_link(target)
        pending = []
        for cycle in range(self.flaps):
            down_at = cycle * self.period
            up_at = down_at + self.period / 2.0
            if cycle == 0:
                link.set_up(False)
            else:
                pending.append(escape.sim.schedule(down_at, link.set_up,
                                                   False))
            pending.append(escape.sim.schedule(up_at, link.set_up, True))
        return pending

    def heal(self, escape, target: str, state: Any) -> None:
        for event in state or []:
            event.cancel()
        escape.net.find_link(target).set_up(True)

    def describe(self) -> Dict[str, Any]:
        data = super().describe()
        data["period"] = self.period
        data["flaps"] = self.flaps
        return data


class LinkDegradeFault(Fault):
    """Degrade a link's shaping (loss / delay / jitter) in place."""

    kind = "link_degrade"

    def __init__(self, at: float, target: Optional[str] = None,
                 duration: Optional[float] = None,
                 loss: Optional[float] = None,
                 delay: Optional[float] = None,
                 jitter: Optional[float] = None):
        super().__init__(at, target, duration)
        if loss is None and delay is None and jitter is None:
            raise FaultError("link_degrade needs loss, delay or jitter")
        self.loss = loss
        self.delay = delay
        self.jitter = jitter

    def candidates(self, escape) -> List[str]:
        return _dataplane_links(escape)

    def inject(self, escape, target: str) -> Any:
        link = escape.net.find_link(target)
        state = (link.loss, link.delay, link.jitter)
        link.set_degradation(loss=self.loss, delay=self.delay,
                             jitter=self.jitter)
        return state

    def heal(self, escape, target: str, state: Any) -> None:
        loss, delay, jitter = state
        escape.net.find_link(target).set_degradation(
            loss=loss, delay=delay, jitter=jitter)

    def describe(self) -> Dict[str, Any]:
        data = super().describe()
        for key in ("loss", "delay", "jitter"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data


class VnfCrashFault(Fault):
    """Kill one running VNF process (its Click router dies).

    One-shot: healing is the RecoveryManager's job, not the fault's.
    """

    kind = "vnf_crash"

    def candidates(self, escape) -> List[str]:
        return sorted(
            vnf_id
            for container in escape.net.vnf_containers()
            for vnf_id, process in container.vnfs.items()
            if process.status == VNF_UP)

    def inject(self, escape, target: str) -> Any:
        for container in escape.net.vnf_containers():
            if target in container.vnfs:
                container.crash_vnf(target)
                return None
        raise FaultError("no running VNF %r" % target)


class _MgmtFault(Fault):
    """Base for faults acting on a container's management plane."""

    def _transports(self, escape, target: str) -> List[Any]:
        """Both current transport endpoints of a container's NETCONF
        session, resolved at call time — a client reconnect mid-fault
        swaps the pipes, and heal must touch the live ones."""
        transports = []
        client = escape.netconf_clients.get(target)
        if client is not None:
            transports.append(client.transport)
        agent = escape.agents.get(target)
        if agent is not None:
            transports.append(agent.server.transport)
        return transports


class ContainerOutageFault(_MgmtFault):
    """Take a whole VNF container down: every hosted VNF crashes and
    its NETCONF agent goes dark (both transport directions blackholed),
    so in-place restarts cannot work and recovery must fail over."""

    kind = "container_down"

    def candidates(self, escape) -> List[str]:
        return sorted(container.name
                      for container in escape.net.vnf_containers()
                      if container.up)

    def inject(self, escape, target: str) -> Any:
        for transport in self._transports(escape, target):
            transport.blackhole = True
        escape.net.get(target).set_up(False)
        return None

    def heal(self, escape, target: str, state: Any) -> None:
        for transport in self._transports(escape, target):
            transport.blackhole = False
        escape.net.get(target).set_up(True)


class NetconfBlackholeFault(_MgmtFault):
    """Partition the management plane of one container: its NETCONF
    transports silently eat every byte (the container itself and its
    VNFs keep running — a pure control-plane fault)."""

    kind = "netconf_blackhole"

    def candidates(self, escape) -> List[str]:
        return sorted(escape.netconf_clients)

    def inject(self, escape, target: str) -> Any:
        for transport in self._transports(escape, target):
            transport.blackhole = True
        return None

    def heal(self, escape, target: str, state: Any) -> None:
        for transport in self._transports(escape, target):
            transport.blackhole = False


class NetconfSlownessFault(_MgmtFault):
    """Add one-way latency to a container's NETCONF transports
    (degraded management network; RPCs slow down or start timing out).
    """

    kind = "netconf_slow"

    def __init__(self, at: float, target: Optional[str] = None,
                 duration: Optional[float] = None,
                 extra_latency: float = 0.5):
        super().__init__(at, target, duration)
        if extra_latency <= 0:
            raise FaultError("extra_latency must be positive, got %r"
                             % extra_latency)
        self.extra_latency = extra_latency

    def candidates(self, escape) -> List[str]:
        return sorted(escape.netconf_clients)

    def inject(self, escape, target: str) -> Any:
        for transport in self._transports(escape, target):
            transport.fault_latency += self.extra_latency
        return None

    def heal(self, escape, target: str, state: Any) -> None:
        for transport in self._transports(escape, target):
            transport.fault_latency = max(
                0.0, transport.fault_latency - self.extra_latency)

    def describe(self) -> Dict[str, Any]:
        data = super().describe()
        data["extra_latency"] = self.extra_latency
        return data


FAULT_KINDS = {cls.kind: cls for cls in (
    LinkDownFault, LinkFlapFault, LinkDegradeFault, VnfCrashFault,
    ContainerOutageFault, NetconfBlackholeFault, NetconfSlownessFault)}
