"""repro.chaos — deterministic fault injection for the whole stack.

Chaos engineering for the prototyping environment: seeded, sim-clock
scheduled faults (link flaps and degradation, VNF crashes, container
outages, NETCONF blackholes and slowness) driven by declarative
:class:`ChaosScenario` descriptions and injected by a
:class:`ChaosEngine` bound to a running ESCAPE instance.  The same
seed always produces the same fault schedule *and* — because the
:class:`~repro.core.recovery.RecoveryManager` reacts on the same
simulator clock — the same recovery timeline, so resilience is a
regression-testable property rather than a demo.
"""

from repro.chaos.engine import ChaosEngine
from repro.chaos.faults import (FAULT_KINDS, ContainerOutageFault, Fault,
                                FaultError, LinkDegradeFault,
                                LinkDownFault, LinkFlapFault,
                                NetconfBlackholeFault,
                                NetconfSlownessFault, VnfCrashFault)
from repro.chaos.scenario import ChaosScenario

__all__ = [
    "ChaosEngine",
    "ChaosScenario",
    "ContainerOutageFault",
    "FAULT_KINDS",
    "Fault",
    "FaultError",
    "LinkDegradeFault",
    "LinkDownFault",
    "LinkFlapFault",
    "NetconfBlackholeFault",
    "NetconfSlownessFault",
    "VnfCrashFault",
]
