"""Ethernet II and 802.1Q VLAN headers."""

import struct
from typing import Union

from repro.packet.addresses import EthAddr
from repro.packet.base import Header, PacketError


class Ethernet(Header):
    """Ethernet II frame header (no FCS)."""

    MIN_LEN = 14

    IP_TYPE = 0x0800
    ARP_TYPE = 0x0806
    VLAN_TYPE = 0x8100
    LLDP_TYPE = 0x88CC

    def __init__(self, dst: Union[str, bytes, EthAddr] = "00:00:00:00:00:00",
                 src: Union[str, bytes, EthAddr] = "00:00:00:00:00:00",
                 type: int = 0, payload=None):
        self.dst = EthAddr(dst)
        self.src = EthAddr(src)
        self.type = type
        self.payload = payload

    def pack_header(self) -> bytes:
        return self.dst.raw + self.src.raw + struct.pack("!H", self.type)

    @classmethod
    def unpack(cls, data: bytes) -> "Ethernet":
        if len(data) < cls.MIN_LEN:
            raise PacketError("Ethernet frame too short: %d bytes" % len(data))
        dst = EthAddr(data[0:6])
        src = EthAddr(data[6:12])
        ethertype = struct.unpack("!H", data[12:14])[0]
        frame = cls(dst=dst, src=src, type=ethertype)
        frame.payload = _parse_ethertype(ethertype, data[14:])
        return frame

    def effective_type(self) -> int:
        """EtherType after skipping any VLAN tag."""
        if self.type == self.VLAN_TYPE and isinstance(self.payload, Vlan):
            return self.payload.type
        return self.type

    def __repr__(self) -> str:
        return "Ethernet(%s > %s, type=%#06x)" % (self.src, self.dst,
                                                  self.type)


class Vlan(Header):
    """802.1Q tag (pcp/cfi/vid + inner EtherType)."""

    MIN_LEN = 4

    def __init__(self, vid: int = 0, pcp: int = 0, cfi: int = 0,
                 type: int = 0, payload=None):
        if not 0 <= vid < 4096:
            raise ValueError("VLAN id out of range: %d" % vid)
        self.vid = vid
        self.pcp = pcp
        self.cfi = cfi
        self.type = type
        self.payload = payload

    def pack_header(self) -> bytes:
        tci = (self.pcp & 7) << 13 | (self.cfi & 1) << 12 | self.vid
        return struct.pack("!HH", tci, self.type)

    @classmethod
    def unpack(cls, data: bytes) -> "Vlan":
        if len(data) < cls.MIN_LEN:
            raise PacketError("VLAN tag too short: %d bytes" % len(data))
        tci, ethertype = struct.unpack("!HH", data[:4])
        tag = cls(vid=tci & 0xFFF, pcp=tci >> 13, cfi=(tci >> 12) & 1,
                  type=ethertype)
        tag.payload = _parse_ethertype(ethertype, data[4:])
        return tag

    def __repr__(self) -> str:
        return "Vlan(vid=%d, pcp=%d, type=%#06x)" % (self.vid, self.pcp,
                                                     self.type)


def _parse_ethertype(ethertype: int, data: bytes):
    """Dispatch an EtherType payload, falling back to raw bytes."""
    from repro.packet.arp import ARP
    from repro.packet.ipv4 import IPv4
    from repro.packet.lldp import LLDP

    parsers = {
        Ethernet.IP_TYPE: IPv4.unpack,
        Ethernet.ARP_TYPE: ARP.unpack,
        Ethernet.VLAN_TYPE: Vlan.unpack,
        Ethernet.LLDP_TYPE: LLDP.unpack,
    }
    parser = parsers.get(ethertype)
    if parser is None:
        return data
    try:
        return parser(data)
    except PacketError:
        return data
