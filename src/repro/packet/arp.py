"""ARP (RFC 826) for IPv4 over Ethernet."""

import struct
from typing import Union

from repro.packet.addresses import EthAddr, IPAddr
from repro.packet.base import Header, PacketError


class ARP(Header):
    """ARP request/reply with Ethernet+IPv4 address sizes."""

    MIN_LEN = 28

    REQUEST = 1
    REPLY = 2

    HW_TYPE_ETHERNET = 1
    PROTO_TYPE_IP = 0x0800

    def __init__(self, opcode: int = REQUEST,
                 hwsrc: Union[str, bytes, EthAddr] = "00:00:00:00:00:00",
                 hwdst: Union[str, bytes, EthAddr] = "00:00:00:00:00:00",
                 protosrc: Union[str, int, IPAddr] = "0.0.0.0",
                 protodst: Union[str, int, IPAddr] = "0.0.0.0"):
        self.opcode = opcode
        self.hwsrc = EthAddr(hwsrc)
        self.hwdst = EthAddr(hwdst)
        self.protosrc = IPAddr(protosrc)
        self.protodst = IPAddr(protodst)
        self.payload = None

    def pack_header(self) -> bytes:
        return (struct.pack("!HHBBH", self.HW_TYPE_ETHERNET,
                            self.PROTO_TYPE_IP, 6, 4, self.opcode)
                + self.hwsrc.raw + self.protosrc.raw
                + self.hwdst.raw + self.protodst.raw)

    @classmethod
    def unpack(cls, data: bytes) -> "ARP":
        if len(data) < cls.MIN_LEN:
            raise PacketError("ARP too short: %d bytes" % len(data))
        hw_type, proto_type, hw_len, proto_len, opcode = \
            struct.unpack("!HHBBH", data[:8])
        if hw_type != cls.HW_TYPE_ETHERNET or proto_type != cls.PROTO_TYPE_IP:
            raise PacketError("unsupported ARP types %#x/%#x"
                              % (hw_type, proto_type))
        if hw_len != 6 or proto_len != 4:
            raise PacketError("unsupported ARP address lengths %d/%d"
                              % (hw_len, proto_len))
        return cls(opcode=opcode,
                   hwsrc=EthAddr(data[8:14]), protosrc=IPAddr(data[14:18]),
                   hwdst=EthAddr(data[18:24]), protodst=IPAddr(data[24:28]))

    def __repr__(self) -> str:
        kind = {self.REQUEST: "who-has", self.REPLY: "is-at"}.get(
            self.opcode, "op=%d" % self.opcode)
        return "ARP(%s %s tell %s)" % (kind, self.protodst, self.protosrc)
