"""UDP header (RFC 768).

The checksum is computed without the IPv4 pseudo-header: packets here
never cross a real kernel, and omitting it keeps headers self-contained
(packing does not need to know the enclosing IP addresses).  Parsers
accept any checksum value for the same reason.
"""

import struct

from repro.packet.base import Header, PacketError, checksum


class UDP(Header):
    MIN_LEN = 8

    def __init__(self, srcport: int = 0, dstport: int = 0, payload=None):
        for port in (srcport, dstport):
            if not 0 <= port <= 0xFFFF:
                raise ValueError("UDP port out of range: %d" % port)
        self.srcport = srcport
        self.dstport = dstport
        self.payload = payload
        self.csum = 0

    def pack(self) -> bytes:
        payload = self.pack_payload()
        length = self.MIN_LEN + len(payload)
        head = struct.pack("!HHHH", self.srcport, self.dstport, length, 0)
        self.csum = checksum(head + payload)
        return head[:6] + struct.pack("!H", self.csum) + payload

    def pack_header(self) -> bytes:
        return self.pack()[: self.MIN_LEN]

    @classmethod
    def unpack(cls, data: bytes) -> "UDP":
        if len(data) < cls.MIN_LEN:
            raise PacketError("UDP too short: %d bytes" % len(data))
        srcport, dstport, length, csum = struct.unpack("!HHHH", data[:8])
        if length < cls.MIN_LEN or length > len(data):
            raise PacketError("bad UDP length %d (have %d bytes)"
                              % (length, len(data)))
        datagram = cls(srcport=srcport, dstport=dstport,
                       payload=data[8:length])
        datagram.csum = csum
        return datagram

    def __repr__(self) -> str:
        return "UDP(%d > %d, %d bytes)" % (self.srcport, self.dstport,
                                           len(self.raw_payload()))
