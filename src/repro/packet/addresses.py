"""Hardware and IPv4 address value types.

Both types are immutable, hashable and accept the usual textual and raw
representations, mirroring the helpers POX and Mininet provide.
"""

import re
import struct
from typing import Union

_MAC_RE = re.compile(r"^[0-9a-fA-F]{2}([:-][0-9a-fA-F]{2}){5}$")


class EthAddr:
    """A 48-bit Ethernet MAC address."""

    __slots__ = ("_raw",)

    def __init__(self, value: Union[str, bytes, int, "EthAddr"]):
        if isinstance(value, EthAddr):
            self._raw = value._raw
        elif isinstance(value, bytes):
            if len(value) != 6:
                raise ValueError("MAC bytes must be length 6, got %d"
                                 % len(value))
            self._raw = value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 48):
                raise ValueError("MAC int out of range: %#x" % value)
            self._raw = value.to_bytes(6, "big")
        elif isinstance(value, str):
            if not _MAC_RE.match(value):
                raise ValueError("malformed MAC address %r" % value)
            self._raw = bytes(int(part, 16)
                              for part in re.split("[:-]", value))
        else:
            raise TypeError("cannot build EthAddr from %r" % (value,))

    @classmethod
    def from_int(cls, value: int) -> "EthAddr":
        return cls(value)

    @property
    def raw(self) -> bytes:
        return self._raw

    def to_int(self) -> int:
        return int.from_bytes(self._raw, "big")

    @property
    def is_multicast(self) -> bool:
        """True when the group bit (LSB of the first octet) is set."""
        return bool(self._raw[0] & 1)

    @property
    def is_broadcast(self) -> bool:
        return self._raw == b"\xff" * 6

    @property
    def is_local(self) -> bool:
        """True for locally-administered addresses."""
        return bool(self._raw[0] & 2)

    def __str__(self) -> str:
        return ":".join("%02x" % byte for byte in self._raw)

    def __repr__(self) -> str:
        return "EthAddr('%s')" % self

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (str, bytes, int)):
            try:
                other = EthAddr(other)
            except (ValueError, TypeError):
                return NotImplemented
        if isinstance(other, EthAddr):
            return self._raw == other._raw
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._raw)

    def __lt__(self, other: "EthAddr") -> bool:
        return self._raw < EthAddr(other)._raw


BROADCAST = EthAddr(b"\xff" * 6)


def is_multicast(addr: Union[str, bytes, EthAddr]) -> bool:
    """Convenience wrapper for :attr:`EthAddr.is_multicast`."""
    return EthAddr(addr).is_multicast


class IPAddr:
    """A 32-bit IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[str, bytes, int, "IPAddr"]):
        if isinstance(value, IPAddr):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value < (1 << 32):
                raise ValueError("IPv4 int out of range: %#x" % value)
            self._value = value
        elif isinstance(value, bytes):
            if len(value) != 4:
                raise ValueError("IPv4 bytes must be length 4, got %d"
                                 % len(value))
            self._value = struct.unpack("!I", value)[0]
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError("malformed IPv4 address %r" % value)
            octets = []
            for part in parts:
                if not part.isdigit():
                    raise ValueError("malformed IPv4 address %r" % value)
                octet = int(part)
                if octet > 255:
                    raise ValueError("IPv4 octet out of range in %r" % value)
                octets.append(octet)
            self._value = (octets[0] << 24 | octets[1] << 16
                           | octets[2] << 8 | octets[3])
        else:
            raise TypeError("cannot build IPAddr from %r" % (value,))

    @property
    def raw(self) -> bytes:
        return struct.pack("!I", self._value)

    def to_int(self) -> int:
        return self._value

    def in_network(self, network: Union[str, "IPAddr"],
                   prefix_len: int = None) -> bool:
        """True when this address falls inside ``network/prefix_len``.

        ``network`` may be given as ``"10.0.0.0/8"`` with ``prefix_len``
        omitted.
        """
        if isinstance(network, str) and "/" in network:
            network, prefix = network.split("/", 1)
            prefix_len = int(prefix)
        if prefix_len is None:
            raise ValueError("prefix length required")
        if not 0 <= prefix_len <= 32:
            raise ValueError("bad prefix length %d" % prefix_len)
        mask = 0 if prefix_len == 0 else (0xFFFFFFFF << (32 - prefix_len)) \
            & 0xFFFFFFFF
        return (self._value & mask) == (IPAddr(network)._value & mask)

    @property
    def is_multicast(self) -> bool:
        return self.in_network("224.0.0.0/4")

    @property
    def is_broadcast(self) -> bool:
        return self._value == 0xFFFFFFFF

    def __str__(self) -> str:
        return "%d.%d.%d.%d" % (self._value >> 24 & 0xFF,
                                self._value >> 16 & 0xFF,
                                self._value >> 8 & 0xFF,
                                self._value & 0xFF)

    def __repr__(self) -> str:
        return "IPAddr('%s')" % self

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (str, bytes, int)):
            try:
                other = IPAddr(other)
            except (ValueError, TypeError):
                return NotImplemented
        if isinstance(other, IPAddr):
            return self._value == other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __lt__(self, other: "IPAddr") -> bool:
        return self._value < IPAddr(other)._value

    def __add__(self, offset: int) -> "IPAddr":
        return IPAddr((self._value + offset) & 0xFFFFFFFF)
