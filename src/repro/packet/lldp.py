"""LLDP (802.1AB) — the subset POX's discovery component emits.

A frame is a sequence of TLVs, mandatorily Chassis ID, Port ID, TTL,
terminated by an End TLV.  The discovery module encodes the switch DPID
in the chassis TLV and the port number in the port TLV, exactly like
POX's ``openflow.discovery``.
"""

import struct
from typing import List, Optional

from repro.packet.base import Header, PacketError


class TLV:
    """Generic LLDP type-length-value."""

    END = 0
    CHASSIS_ID = 1
    PORT_ID = 2
    TTL = 3
    SYSTEM_NAME = 5

    def __init__(self, tlv_type: int, value: bytes = b""):
        if not 0 <= tlv_type < 128:
            raise ValueError("TLV type out of range: %d" % tlv_type)
        if len(value) > 511:
            raise ValueError("TLV value too long: %d bytes" % len(value))
        self.tlv_type = tlv_type
        self.value = value

    def pack(self) -> bytes:
        type_len = (self.tlv_type << 9) | len(self.value)
        return struct.pack("!H", type_len) + self.value

    @classmethod
    def unpack_one(cls, data: bytes) -> ("TLV", bytes):
        if len(data) < 2:
            raise PacketError("LLDP TLV truncated")
        type_len = struct.unpack("!H", data[:2])[0]
        tlv_type = type_len >> 9
        length = type_len & 0x1FF
        if len(data) < 2 + length:
            raise PacketError("LLDP TLV value truncated")
        return cls(tlv_type, data[2:2 + length]), data[2 + length:]

    def __repr__(self) -> str:
        return "TLV(type=%d, %d bytes)" % (self.tlv_type, len(self.value))


class ChassisTLV(TLV):
    """Chassis ID TLV carrying a locally-assigned string (the DPID)."""

    SUBTYPE_LOCAL = 7

    def __init__(self, chassis_id: str):
        super().__init__(TLV.CHASSIS_ID,
                         bytes([self.SUBTYPE_LOCAL]) + chassis_id.encode())

    @property
    def chassis_id(self) -> str:
        return self.value[1:].decode()


class PortTLV(TLV):
    """Port ID TLV carrying a locally-assigned string (the port number)."""

    SUBTYPE_LOCAL = 7

    def __init__(self, port_id: str):
        super().__init__(TLV.PORT_ID,
                         bytes([self.SUBTYPE_LOCAL]) + port_id.encode())

    @property
    def port_id(self) -> str:
        return self.value[1:].decode()


class TTLTLV(TLV):
    def __init__(self, ttl: int):
        super().__init__(TLV.TTL, struct.pack("!H", ttl))

    @property
    def ttl(self) -> int:
        return struct.unpack("!H", self.value)[0]


class LLDP(Header):
    """An LLDP PDU: a list of TLVs (without the trailing End TLV)."""

    def __init__(self, tlvs: Optional[List[TLV]] = None):
        self.tlvs = list(tlvs or [])
        self.payload = None

    def pack_header(self) -> bytes:
        return b"".join(tlv.pack() for tlv in self.tlvs) + TLV(TLV.END).pack()

    @classmethod
    def unpack(cls, data: bytes) -> "LLDP":
        tlvs: List[TLV] = []
        rest = data
        while True:
            tlv, rest = TLV.unpack_one(rest)
            if tlv.tlv_type == TLV.END:
                break
            tlvs.append(tlv)
        return cls(tlvs)

    def find_tlv(self, tlv_type: int) -> Optional[TLV]:
        for tlv in self.tlvs:
            if tlv.tlv_type == tlv_type:
                return tlv
        return None

    @property
    def chassis_id(self) -> Optional[str]:
        tlv = self.find_tlv(TLV.CHASSIS_ID)
        return tlv.value[1:].decode() if tlv else None

    @property
    def port_id(self) -> Optional[str]:
        tlv = self.find_tlv(TLV.PORT_ID)
        return tlv.value[1:].decode() if tlv else None

    @classmethod
    def discovery_frame(cls, dpid: int, port_no: int,
                        ttl: int = 120) -> "LLDP":
        """Build the probe POX's discovery module sends out each port."""
        return cls([ChassisTLV("dpid:%d" % dpid),
                    PortTLV(str(port_no)),
                    TTLTLV(ttl)])

    def discovery_origin(self) -> Optional[tuple]:
        """Decode ``(dpid, port_no)`` from a discovery probe, else None."""
        chassis, port = self.chassis_id, self.port_id
        if chassis is None or port is None:
            return None
        if not chassis.startswith("dpid:"):
            return None
        try:
            return int(chassis[5:]), int(port)
        except ValueError:
            return None

    def __repr__(self) -> str:
        return "LLDP(%d TLVs)" % len(self.tlvs)
