"""Packet header codec.

Pure-Python encode/decode for the protocols the rest of the stack needs:
Ethernet (+ 802.1Q VLAN), ARP, IPv4, ICMP, UDP, TCP and LLDP.  These are
the wire formats the emulated hosts generate ("use standard tools to send
and inspect live traffic", demo step 4), the Click elements classify and
rewrite, and the OpenFlow datapath matches on.

Headers are chained through the ``payload`` attribute::

    pkt = Ethernet(src="00:00:00:00:00:01", dst="00:00:00:00:00:02",
                   type=Ethernet.IP_TYPE,
                   payload=IPv4(srcip="10.0.0.1", dstip="10.0.0.2",
                                protocol=IPv4.UDP_PROTOCOL,
                                payload=UDP(srcport=1234, dstport=53,
                                            payload=b"hello")))
    wire = pkt.pack()
    again = Ethernet.unpack(wire)
"""

from repro.packet.addresses import (BROADCAST, EthAddr, IPAddr,
                                    is_multicast)
from repro.packet.arp import ARP
from repro.packet.base import Header, PacketError
from repro.packet.ethernet import Ethernet, Vlan
from repro.packet.icmp import ICMP
from repro.packet.ipv4 import IPv4
from repro.packet.lldp import LLDP, ChassisTLV, PortTLV, TTLTLV
from repro.packet.probe import Probe, frame_probe, pack_probe, parse_probe
from repro.packet.tcp import TCP
from repro.packet.udp import UDP

__all__ = [
    "ARP",
    "BROADCAST",
    "ChassisTLV",
    "EthAddr",
    "Ethernet",
    "Header",
    "ICMP",
    "IPAddr",
    "IPv4",
    "LLDP",
    "PacketError",
    "PortTLV",
    "Probe",
    "TCP",
    "TTLTLV",
    "UDP",
    "Vlan",
    "frame_probe",
    "is_multicast",
    "pack_probe",
    "parse_probe",
]
