"""Shared machinery for packet header classes."""

import struct
from typing import Optional, Type, Union


class PacketError(Exception):
    """Raised when a buffer cannot be parsed as the requested header."""


def checksum(data: bytes) -> int:
    """RFC 1071 Internet checksum over ``data``.

    Unpacks the buffer as big-endian 16-bit words in one struct call
    (C speed) instead of a per-byte Python loop — this runs for every
    IP/UDP header built on the dataplane hot path.
    """
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack("!%dH" % (len(data) // 2), data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


class Header:
    """Base class for protocol headers.

    Subclasses implement :meth:`pack_header` and :meth:`unpack`.  Payloads
    chain through :attr:`payload`, which is either another header, raw
    ``bytes``, or ``None``.
    """

    payload: Union["Header", bytes, None] = None

    def pack(self) -> bytes:
        """Serialize this header and everything below it."""
        return self.pack_header() + self.pack_payload()

    def pack_header(self) -> bytes:
        raise NotImplementedError

    def pack_payload(self) -> bytes:
        if self.payload is None:
            return b""
        if isinstance(self.payload, Header):
            return self.payload.pack()
        return bytes(self.payload)

    @classmethod
    def unpack(cls, data: bytes) -> "Header":
        raise NotImplementedError

    def find(self, kind: Type["Header"]) -> Optional["Header"]:
        """Return the first header of type ``kind`` in this chain."""
        node: Union[Header, bytes, None] = self
        while isinstance(node, Header):
            if isinstance(node, kind):
                return node
            node = node.payload
        return None

    def raw_payload(self) -> bytes:
        """The innermost raw bytes of the chain (``b""`` when absent)."""
        node: Union[Header, bytes, None] = self.payload
        while isinstance(node, Header):
            node = node.payload
        return bytes(node) if node is not None else b""

    def __len__(self) -> int:
        return len(self.pack())
