"""TCP header (RFC 793), no options.

As with UDP, the checksum skips the pseudo-header so packing stays
self-contained; this stack uses TCP headers for classification and
steering, not for a full reliable-stream implementation.
"""

import struct

from repro.packet.base import Header, PacketError, checksum


class TCP(Header):
    MIN_LEN = 20

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20

    def __init__(self, srcport: int = 0, dstport: int = 0, seq: int = 0,
                 ack: int = 0, flags: int = 0, window: int = 65535,
                 payload=None):
        for port in (srcport, dstport):
            if not 0 <= port <= 0xFFFF:
                raise ValueError("TCP port out of range: %d" % port)
        self.srcport = srcport
        self.dstport = dstport
        self.seq = seq
        self.ack = ack
        self.flags = flags
        self.window = window
        self.payload = payload
        self.csum = 0

    def pack(self) -> bytes:
        payload = self.pack_payload()
        offset_flags = (5 << 12) | (self.flags & 0x3F)
        head = struct.pack("!HHIIHHHH", self.srcport, self.dstport,
                           self.seq & 0xFFFFFFFF, self.ack & 0xFFFFFFFF,
                           offset_flags, self.window, 0, 0)
        self.csum = checksum(head + payload)
        return head[:16] + struct.pack("!H", self.csum) + head[18:] + payload

    def pack_header(self) -> bytes:
        return self.pack()[: self.MIN_LEN]

    @classmethod
    def unpack(cls, data: bytes) -> "TCP":
        if len(data) < cls.MIN_LEN:
            raise PacketError("TCP too short: %d bytes" % len(data))
        (srcport, dstport, seq, ack, offset_flags,
         window, csum, _urg) = struct.unpack("!HHIIHHHH", data[:20])
        offset = (offset_flags >> 12) * 4
        if offset < cls.MIN_LEN or offset > len(data):
            raise PacketError("bad TCP data offset %d" % offset)
        segment = cls(srcport=srcport, dstport=dstport, seq=seq, ack=ack,
                      flags=offset_flags & 0x3F, window=window,
                      payload=data[offset:])
        segment.csum = csum
        return segment

    def flag_names(self) -> str:
        names = []
        for bit, name in ((self.SYN, "SYN"), (self.ACK, "ACK"),
                          (self.FIN, "FIN"), (self.RST, "RST"),
                          (self.PSH, "PSH"), (self.URG, "URG")):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) or "none"

    def __repr__(self) -> str:
        return "TCP(%d > %d, %s, seq=%d)" % (self.srcport, self.dstport,
                                             self.flag_names(), self.seq)
