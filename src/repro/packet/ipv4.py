"""IPv4 header (RFC 791), no options support."""

import struct
from typing import Union

from repro.packet.addresses import IPAddr
from repro.packet.base import Header, PacketError, checksum


class IPv4(Header):
    """IPv4 header.  The total length and checksum fields are computed at
    pack time; a parsed header keeps the values from the wire."""

    MIN_LEN = 20

    ICMP_PROTOCOL = 1
    TCP_PROTOCOL = 6
    UDP_PROTOCOL = 17

    def __init__(self, srcip: Union[str, int, IPAddr] = "0.0.0.0",
                 dstip: Union[str, int, IPAddr] = "0.0.0.0",
                 protocol: int = 0, ttl: int = 64, tos: int = 0,
                 id: int = 0, flags: int = 0, frag: int = 0,
                 payload=None):
        self.srcip = IPAddr(srcip)
        self.dstip = IPAddr(dstip)
        self.protocol = protocol
        self.ttl = ttl
        self.tos = tos
        self.id = id
        self.flags = flags
        self.frag = frag
        self.payload = payload
        self.csum = 0  # filled in by pack / kept from the wire by unpack

    def pack_header(self) -> bytes:
        payload = self.pack_payload()
        total_len = self.MIN_LEN + len(payload)
        flags_frag = (self.flags & 7) << 13 | (self.frag & 0x1FFF)
        head = struct.pack("!BBHHHBBH", (4 << 4) | 5, self.tos, total_len,
                           self.id, flags_frag, self.ttl, self.protocol, 0)
        head += self.srcip.raw + self.dstip.raw
        self.csum = checksum(head)
        return head[:10] + struct.pack("!H", self.csum) + head[12:]

    def pack(self) -> bytes:
        # pack_header already needs the payload for the length field, so
        # avoid serializing the payload twice.
        payload = self.pack_payload()
        header = self.pack_header()
        return header + payload

    @classmethod
    def unpack(cls, data: bytes) -> "IPv4":
        if len(data) < cls.MIN_LEN:
            raise PacketError("IPv4 too short: %d bytes" % len(data))
        (ver_ihl, tos, total_len, ident, flags_frag,
         ttl, protocol, csum) = struct.unpack("!BBHHHBBH", data[:12])
        version = ver_ihl >> 4
        ihl = ver_ihl & 0xF
        if version != 4:
            raise PacketError("not IPv4 (version=%d)" % version)
        if ihl < 5:
            raise PacketError("bad IHL %d" % ihl)
        header_len = ihl * 4
        if len(data) < header_len or len(data) < total_len:
            raise PacketError("IPv4 truncated (%d < %d)"
                              % (len(data), max(header_len, total_len)))
        if checksum(data[:header_len]) != 0:
            raise PacketError("IPv4 header checksum mismatch")
        pkt = cls(srcip=IPAddr(data[12:16]), dstip=IPAddr(data[16:20]),
                  protocol=protocol, ttl=ttl, tos=tos, id=ident,
                  flags=flags_frag >> 13, frag=flags_frag & 0x1FFF)
        pkt.csum = csum
        pkt.payload = _parse_protocol(pkt, data[header_len:total_len])
        return pkt

    def decremented(self) -> "IPv4":
        """A copy with TTL decremented (router forwarding helper)."""
        if self.ttl <= 0:
            raise PacketError("TTL already zero")
        clone = IPv4(srcip=self.srcip, dstip=self.dstip,
                     protocol=self.protocol, ttl=self.ttl - 1, tos=self.tos,
                     id=self.id, flags=self.flags, frag=self.frag,
                     payload=self.payload)
        return clone

    def __repr__(self) -> str:
        return "IPv4(%s > %s, proto=%d, ttl=%d)" % (self.srcip, self.dstip,
                                                    self.protocol, self.ttl)


def _parse_protocol(ip: "IPv4", data: bytes):
    from repro.packet.icmp import ICMP
    from repro.packet.tcp import TCP
    from repro.packet.udp import UDP

    parsers = {
        IPv4.ICMP_PROTOCOL: ICMP.unpack,
        IPv4.TCP_PROTOCOL: TCP.unpack,
        IPv4.UDP_PROTOCOL: UDP.unpack,
    }
    parser = parsers.get(ip.protocol)
    if parser is None:
        return data
    try:
        return parser(data)
    except PacketError:
        return data
