"""ICMP echo request/reply and unreachable messages."""

import struct

from repro.packet.base import Header, PacketError, checksum


class ICMP(Header):
    """ICMP header with the echo id/seq fields inline.

    For echo request/reply, :attr:`id` and :attr:`seq` carry the
    identifier and sequence number and :attr:`payload` the echo data.
    For other types the 4 "rest of header" bytes are exposed through the
    same two 16-bit fields.
    """

    MIN_LEN = 8

    TYPE_ECHO_REPLY = 0
    TYPE_DEST_UNREACHABLE = 3
    TYPE_ECHO_REQUEST = 8
    TYPE_TIME_EXCEEDED = 11

    CODE_NET_UNREACHABLE = 0
    CODE_HOST_UNREACHABLE = 1
    CODE_PORT_UNREACHABLE = 3

    def __init__(self, type: int = TYPE_ECHO_REQUEST, code: int = 0,
                 id: int = 0, seq: int = 0, payload=None):
        self.type = type
        self.code = code
        self.id = id
        self.seq = seq
        self.payload = payload
        self.csum = 0

    def pack(self) -> bytes:
        payload = self.pack_payload()
        head = struct.pack("!BBHHH", self.type, self.code, 0,
                           self.id, self.seq)
        self.csum = checksum(head + payload)
        return (head[:2] + struct.pack("!H", self.csum) + head[4:]
                + payload)

    def pack_header(self) -> bytes:
        return self.pack()[: self.MIN_LEN]

    @classmethod
    def unpack(cls, data: bytes) -> "ICMP":
        if len(data) < cls.MIN_LEN:
            raise PacketError("ICMP too short: %d bytes" % len(data))
        msg_type, code, csum, ident, seq = struct.unpack("!BBHHH", data[:8])
        if checksum(data) != 0:
            raise PacketError("ICMP checksum mismatch")
        msg = cls(type=msg_type, code=code, id=ident, seq=seq,
                  payload=data[8:])
        msg.csum = csum
        return msg

    @property
    def is_echo_request(self) -> bool:
        return self.type == self.TYPE_ECHO_REQUEST

    @property
    def is_echo_reply(self) -> bool:
        return self.type == self.TYPE_ECHO_REPLY

    def make_reply(self) -> "ICMP":
        """Build the echo reply matching this echo request."""
        if not self.is_echo_request:
            raise PacketError("can only reply to an echo request")
        return ICMP(type=self.TYPE_ECHO_REPLY, code=0, id=self.id,
                    seq=self.seq, payload=self.payload)

    def __repr__(self) -> str:
        names = {self.TYPE_ECHO_REPLY: "echo-reply",
                 self.TYPE_ECHO_REQUEST: "echo-request",
                 self.TYPE_DEST_UNREACHABLE: "unreachable",
                 self.TYPE_TIME_EXCEEDED: "time-exceeded"}
        return "ICMP(%s, id=%d, seq=%d)" % (
            names.get(self.type, "type=%d" % self.type), self.id, self.seq)
