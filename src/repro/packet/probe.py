"""SLA probe payload format.

The SLA monitor measures a deployed chain by injecting *probe*
datagrams at the source SAP and timing their arrival at the sink.
Each probe's UDP payload carries, in-band:

* a magic + version prefix (so taps can recognize probes on the wire),
* the **trace id** of the ``sla.probe`` span that emitted the burst —
  the hook that lets a flight-recorder frame be joined back to its
  pipeline span,
* the burst sequence number and position within the burst,
* the simulated **send timestamp** (one-way delay = arrival − send;
  both ends read the same simulated clock),
* the chain name.

The payload may be zero-padded to a target size: bandwidth probes use
larger frames so the burst's dispersion at the bottleneck is
measurable.
"""

import struct
from typing import Optional

from repro.packet.ethernet import Ethernet
from repro.packet.udp import UDP

PROBE_MAGIC = b"SLAP"
PROBE_VERSION = 1

# magic, version, trace_id, seq, index, send_time, chain-name length
_HEAD = struct.Struct("!4sBIIHdH")


class Probe:
    """Decoded probe payload."""

    __slots__ = ("trace_id", "seq", "index", "send_time", "chain")

    def __init__(self, trace_id: int, seq: int, index: int,
                 send_time: float, chain: str = ""):
        self.trace_id = trace_id
        self.seq = seq
        self.index = index
        self.send_time = send_time
        self.chain = chain

    def __repr__(self) -> str:
        return "Probe(%s #%d.%d, trace=%d, t=%.6f)" % (
            self.chain, self.seq, self.index, self.trace_id,
            self.send_time)


def pack_probe(trace_id: int, seq: int, index: int, send_time: float,
               chain: str = "", pad_to: int = 0) -> bytes:
    """Serialize one probe payload, padded to ``pad_to`` bytes.

    The padding repeats the header bytes rather than zero-filling so
    the *tail* of a padded probe stays unique per packet — flow
    telemetry derives trace ids from the trailing frame bytes (the
    part VLAN tagging and header rewrites leave alone)."""
    name = chain.encode("utf-8")
    payload = _HEAD.pack(PROBE_MAGIC, PROBE_VERSION, trace_id & 0xFFFFFFFF,
                         seq & 0xFFFFFFFF, index & 0xFFFF, send_time,
                         len(name)) + name
    if pad_to > len(payload):
        pad = pad_to - len(payload)
        payload += (payload * (pad // len(payload) + 1))[:pad]
    return payload


def parse_probe(payload: bytes) -> Optional[Probe]:
    """Decode a probe payload; None when it is not a probe."""
    if len(payload) < _HEAD.size or not payload.startswith(PROBE_MAGIC):
        return None
    magic, version, trace_id, seq, index, send_time, name_len = \
        _HEAD.unpack_from(payload)
    if version != PROBE_VERSION:
        return None
    name = payload[_HEAD.size:_HEAD.size + name_len]
    return Probe(trace_id, seq, index, send_time,
                 name.decode("utf-8", "replace"))


def frame_probe(frame: Ethernet) -> Optional[Probe]:
    """Extract the probe (if any) riding in an Ethernet frame — the
    flight recorder's trace-annotation hook."""
    udp = frame.find(UDP)
    if udp is None:
        return None
    return parse_probe(udp.raw_payload())
