"""Tests for Click elementclass compound elements."""

import pytest

from repro.click import ClickPacket, ConfigError, Router, parse_config
from repro.packet import Ethernet, IPv4, TCP, UDP


def ip_packet(proto_payload=None, protocol=17):
    return ClickPacket.from_header(Ethernet(
        src="00:00:00:00:00:01", dst="00:00:00:00:00:02",
        type=Ethernet.IP_TYPE,
        payload=IPv4(srcip="10.0.0.1", dstip="10.0.0.2",
                     protocol=protocol, payload=proto_payload)))


class TestExpansion:
    def test_simple_inline(self):
        config = parse_config(
            "elementclass Bump { input -> c :: Counter -> output; }"
            "src :: InfiniteSource(LIMIT 3) -> b :: Bump -> Discard;")
        assert "b/c" in config.elements
        assert "b" not in config.elements
        assert not any("input" in (conn.from_element, conn.to_element)
                       for conn in config.connections)

    def test_runs_end_to_end(self):
        router = Router.from_config(
            "elementclass Bump { input -> c :: Counter -> output; }"
            "src :: InfiniteSource(LIMIT 5) -> b :: Bump -> Discard;")
        router.start()
        router.sim.run(until=1.0)
        assert router.read_handler("b/c.count") == "5"

    def test_two_instances_are_independent(self):
        router = Router.from_config(
            "elementclass Bump { input -> c :: Counter -> output; }"
            "s1 :: InfiniteSource(LIMIT 2) -> b1 :: Bump -> Discard;"
            "s2 :: InfiniteSource(LIMIT 7) -> b2 :: Bump -> d2 :: Discard;")
        router.start()
        router.sim.run(until=1.0)
        assert router.read_handler("b1/c.count") == "2"
        assert router.read_handler("b2/c.count") == "7"

    def test_multi_port_compound(self):
        router = Router.from_config(
            "elementclass Split {"
            "  input -> cl :: IPClassifier(tcp, -);"
            "  cl[0] -> [0]output; cl[1] -> [1]output;"
            "}"
            "i :: Idle -> sp :: Split;"
            "sp[0] -> tcp_c :: Counter -> Discard;"
            "sp[1] -> rest_c :: Counter -> Discard;")
        router.start()
        router.element("sp/cl").push(0, ip_packet(TCP(), protocol=6))
        router.element("sp/cl").push(0, ip_packet(UDP(), protocol=17))
        assert router.read_handler("tcp_c.count") == "1"
        assert router.read_handler("rest_c.count") == "1"

    def test_nested_compounds(self):
        router = Router.from_config(
            "elementclass Inner { input -> c :: Counter -> output; }"
            "elementclass Outer { input -> i :: Inner -> output; }"
            "src :: InfiniteSource(LIMIT 4) -> o :: Outer -> Discard;")
        router.start()
        router.sim.run(until=1.0)
        assert router.read_handler("o/i/c.count") == "4"

    def test_passthrough_port(self):
        router = Router.from_config(
            "elementclass Wire { input -> output; }"
            "src :: InfiniteSource(LIMIT 3) -> w :: Wire"
            " -> c :: Counter -> Discard;")
        router.start()
        router.sim.run(until=1.0)
        assert router.read_handler("c.count") == "3"

    def test_anonymous_instance(self):
        router = Router.from_config(
            "elementclass Bump { input -> c :: Counter -> output; }"
            "src :: InfiniteSource(LIMIT 2) -> Bump -> Discard;")
        router.start()
        router.sim.run(until=1.0)
        counter = [name for name in router.elements if name.endswith("/c")]
        assert len(counter) == 1
        assert router.read_handler("%s.count" % counter[0]) == "2"

    def test_compound_used_before_definition(self):
        # Click resolves elementclasses at expansion, not in order
        router = Router.from_config(
            "src :: InfiniteSource(LIMIT 1) -> b :: Bump -> Discard;"
            "elementclass Bump { input -> c :: Counter -> output; }")
        router.start()
        router.sim.run(until=1.0)
        assert router.read_handler("b/c.count") == "1"


class TestErrors:
    def test_duplicate_definition_rejected(self):
        with pytest.raises(ConfigError):
            parse_config(
                "elementclass X { input -> output; }"
                "elementclass X { input -> Counter -> output; }")

    def test_unknown_input_port_rejected(self):
        with pytest.raises(ConfigError) as exc:
            parse_config(
                "elementclass One { input -> c :: Counter -> output; }"
                "Idle -> [3]o :: One; o -> Discard;")
        assert "no input port 3" in str(exc.value)

    def test_unknown_output_port_rejected(self):
        with pytest.raises(ConfigError) as exc:
            parse_config(
                "elementclass One { input -> c :: Counter -> output; }"
                "Idle -> o :: One; o[5] -> Discard;")
        assert "no output port 5" in str(exc.value)

    def test_configuration_on_compound_rejected(self):
        with pytest.raises(ConfigError):
            parse_config(
                "elementclass Bump { input -> Counter -> output; }"
                "Idle -> Bump(42) -> Discard;")

    def test_recursive_compound_rejected(self):
        with pytest.raises(ConfigError):
            parse_config(
                "elementclass Loop { input -> l :: Loop -> output; }"
                "Idle -> x :: Loop -> Discard;")

    def test_reversed_pseudo_ports_rejected(self):
        with pytest.raises(ConfigError):
            parse_config(
                "elementclass Bad { output -> c :: Counter -> input; }"
                "Idle -> b :: Bad -> Discard;")

    def test_missing_body_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("elementclass Nope;")


class TestRealisticCompound:
    """A catalog-style VNF written as a compound element."""

    CONFIG = """
    elementclass MonitoredFirewall {
      input -> cnt_in :: Counter
            -> fw :: IPFilter(allow icmp, drop all)
            -> cnt_out :: Counter -> output;
    }
    FromDevice(in0) -> mfw :: MonitoredFirewall -> ToDevice(out0);
    """

    def test_vnf_as_compound(self):
        from repro.click.elements.device import Device
        from repro.sim import Simulator
        router = Router.from_config(self.CONFIG, sim=Simulator())
        in_dev, out_dev = Device("in0"), Device("out0")
        sent = []
        out_dev.transmit = sent.append
        router.device_map = {"in0": in_dev, "out0": out_dev}
        router.start()
        icmp_frame = Ethernet(
            src="00:00:00:00:00:01", dst="00:00:00:00:00:02",
            type=Ethernet.IP_TYPE,
            payload=IPv4(srcip="10.0.0.1", dstip="10.0.0.2",
                         protocol=1)).pack()
        udp_frame = ip_packet(UDP(payload=b"x")).data
        in_dev.deliver(icmp_frame)
        in_dev.deliver(udp_frame)
        assert len(sent) == 1  # ICMP passed, UDP dropped
        assert router.read_handler("mfw/fw.passed") == "1"
        assert router.read_handler("mfw/cnt_in.count") == "2"


class TestParameterizedCompounds:
    def test_single_parameter(self):
        router = Router.from_config(
            "elementclass Limit { $rate |"
            "  input -> Queue(100) -> Shaper($rate) -> Unqueue -> output;"
            "}"
            "src :: InfiniteSource -> l :: Limit(50) -> c :: Counter"
            " -> Discard;")
        router.start()
        router.sim.run(until=2.0)
        count = int(router.read_handler("c.count"))
        assert 90 <= count <= 110  # ~50 pps over 2 s

    def test_two_parameters(self):
        router = Router.from_config(
            "elementclass Tagged { $color, $limit |"
            "  input -> Paint($color) -> q :: Queue($limit)"
            "  -> Unqueue -> output;"
            "}"
            "Idle -> t :: Tagged(3, 17) -> Discard;")
        assert router.element("t/q").capacity == 17
        paint = [e for name, e in router.elements.items()
                 if name.startswith("t/Paint")]
        assert paint[0].color == 3

    def test_instances_with_different_arguments(self):
        router = Router.from_config(
            "elementclass Q { $cap | input -> q :: Queue($cap)"
            " -> Unqueue -> output; }"
            "Idle -> a :: Q(5) -> Discard;"
            "Idle -> b :: Q(500) -> d2 :: Discard;")
        assert router.element("a/q").capacity == 5
        assert router.element("b/q").capacity == 500

    def test_wrong_arity_rejected(self):
        with pytest.raises(ConfigError) as exc:
            Router.from_config(
                "elementclass Q { $cap | input -> Queue($cap)"
                " -> Unqueue -> output; }"
                "Idle -> Q(5, 9) -> Discard;")
        assert "parameter" in str(exc.value)

    def test_missing_argument_rejected(self):
        with pytest.raises(ConfigError):
            Router.from_config(
                "elementclass Q { $cap | input -> Queue($cap)"
                " -> Unqueue -> output; }"
                "Idle -> Q -> Discard;")

    def test_longest_name_substituted_first(self):
        router = Router.from_config(
            "elementclass TwoQ { $cap, $cap2 |"
            "  input -> a :: Queue($cap) -> Unqueue"
            "  -> b :: Queue($cap2) -> Unqueue -> output;"
            "}"
            "Idle -> t :: TwoQ(11, 22) -> Discard;")
        assert router.element("t/a").capacity == 11
        assert router.element("t/b").capacity == 22
