"""Unit tests for repro.netem.topo — the declarative topology
descriptions (Mininet ``Topo`` analog).

The stock generators (SingleSwitch/Linear/Tree) predate the scenario
topology zoo and were only exercised indirectly through Network.build;
these tests pin their node/role counts, naming scheme, and link-option
propagation directly, plus the add_node/add_link validation errors.
"""

import pytest

from repro.netem import Network
from repro.netem.topo import LinearTopo, SingleSwitchTopo, Topo, TreeTopo


class TestTopoValidation:
    def test_duplicate_node_rejected_with_role(self):
        topo = Topo()
        topo.add_switch("s1")
        with pytest.raises(ValueError, match=r"'s1' already .*as switch"):
            topo.add_host("s1")

    def test_link_to_unknown_node_rejected(self):
        topo = Topo()
        topo.add_switch("s1")
        with pytest.raises(ValueError, match="unknown node 'h1'"):
            topo.add_link("h1", "s1")
        with pytest.raises(ValueError, match="unknown node 'h2'"):
            topo.add_link("s1", "h2")
        assert topo.links == []

    def test_self_loop_rejected(self):
        topo = Topo()
        topo.add_switch("s1")
        with pytest.raises(ValueError, match="self-loop"):
            topo.add_link("s1", "s1")

    def test_parallel_links_allowed(self):
        # multi-port VNF containers hang several links between the
        # same (switch, container) pair — must not be rejected
        topo = Topo()
        topo.add_switch("s1")
        topo.add_vnf_container("nc1")
        topo.add_link("s1", "nc1")
        topo.add_link("s1", "nc1")
        assert len(topo.links) == 2

    def test_link_opts_normalized(self):
        topo = Topo()
        topo.add_switch("s1")
        topo.add_host("h1")
        topo.add_link("h1", "s1", bandwidth=10e6, delay=0.002)
        _n1, _n2, opts = topo.links[0]
        assert opts == {"bandwidth": 10e6, "delay": 0.002, "loss": 0.0}


class TestSingleSwitchTopo:
    def test_counts_and_roles(self):
        topo = SingleSwitchTopo(k=3)
        assert topo.switches() == ["s1"]
        assert sorted(topo.hosts()) == ["h1", "h2", "h3"]
        assert topo.vnf_containers() == []
        assert len(topo.links) == 3


class TestLinearTopo:
    def test_single_host_per_switch_naming(self):
        topo = LinearTopo(k=3, n=1)
        assert sorted(topo.switches()) == ["s1", "s2", "s3"]
        assert sorted(topo.hosts()) == ["h1", "h2", "h3"]
        # 2 trunk links + 3 access links
        assert len(topo.links) == 5

    def test_multi_host_per_switch_naming(self):
        topo = LinearTopo(k=2, n=2)
        assert sorted(topo.hosts()) == ["h1s1", "h1s2", "h2s1", "h2s2"]
        assert len(topo.links) == 1 + 4

    def test_link_opts_propagate_to_every_link(self):
        topo = LinearTopo(k=3, n=2, bandwidth=5e6, delay=0.001)
        assert len(topo.links) == 2 + 6
        for _n1, _n2, opts in topo.links:
            assert opts["bandwidth"] == 5e6
            assert opts["delay"] == 0.001

    def test_builds_into_network(self):
        net = Network.build(LinearTopo(k=2, n=1, delay=0.001))
        assert len(net.hosts()) == 2
        assert len(net.switches()) == 2


class TestTreeTopo:
    def test_counts(self):
        topo = TreeTopo(depth=2, fanout=2)
        # 1 root + 2 level-1 switches, 4 leaf hosts
        assert len(topo.switches()) == 3
        assert len(topo.hosts()) == 4
        assert len(topo.links) == 6

    def test_depth_three_counts(self):
        topo = TreeTopo(depth=3, fanout=2)
        assert len(topo.switches()) == 7
        assert len(topo.hosts()) == 8
        assert len(topo.links) == 14

    def test_link_opts_propagate(self):
        topo = TreeTopo(depth=2, fanout=3, delay=0.002, loss=0.01)
        assert len(topo.links) == 3 + 9
        for _n1, _n2, opts in topo.links:
            assert opts["delay"] == 0.002
            assert opts["loss"] == 0.01
