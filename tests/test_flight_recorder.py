"""Tests for the per-link flight recorder (repro.netem.recorder)."""

import struct

import pytest

from repro.core import ESCAPE
from repro.core.sgfile import load_topology
from repro.netem import FlightRecorder, Network, RecorderError
from repro.packet import Ethernet, IPv4, UDP
from repro.sim import Simulator

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.001},
        {"from": "s2", "to": "h2", "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
    ],
}

SG = {
    "name": "rec-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow all"}}],
    "chain": ["h1", "fw", "h2"],
    "requirements": [{"from": "h1", "to": "h2", "max_delay": 0.05}],
}


def small_net():
    """Two hosts on one link, no controller needed."""
    sim = Simulator()
    net = Network(sim)
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    net.add_link(h1, h2, delay=0.001)
    net.static_arp()
    net.start()
    return sim, net, h1, h2


@pytest.fixture
def escape():
    framework = ESCAPE.from_topology(load_topology(TOPOLOGY))
    framework.start()
    return framework


class TestLinkTap:
    def test_tap_records_both_directions(self):
        sim, net, h1, h2 = small_net()
        recorder = FlightRecorder(net)
        tap = recorder.attach(net.links[0])
        h1.send_udp(h2.ip, 5000, b"payload")
        net.run(0.5)
        directions = {record.direction for record in tap.records}
        assert directions == {"tx", "rx"}
        # each frame appears once per direction
        assert len(tap.records) % 2 == 0

    def test_untapped_link_has_no_overhead_hooks(self):
        sim, net, _h1, _h2 = small_net()
        assert net.links[0].taps == []

    def test_ring_evicts_oldest(self):
        sim, net, h1, h2 = small_net()
        recorder = FlightRecorder(net)
        tap = recorder.attach(net.links[0], capacity=4)
        for _ in range(10):
            h1.send_udp(h2.ip, 5000, b"x")
        net.run(1.0)
        assert len(tap.records) == 4
        assert tap.evicted == tap.matched - 4
        assert tap.evicted > 0
        # the survivors are the most recent records
        sequences = [record.seq for record in tap.records]
        assert sequences == sorted(sequences)
        assert sequences[-1] == tap.matched - 1

    def test_attach_is_idempotent(self):
        sim, net, _h1, _h2 = small_net()
        recorder = FlightRecorder(net)
        tap1 = recorder.attach(net.links[0])
        tap2 = recorder.attach(net.links[0])
        assert tap1 is tap2
        assert len(net.links[0].taps) == 1

    def test_detach_removes_hook(self):
        sim, net, h1, h2 = small_net()
        recorder = FlightRecorder(net)
        tap = recorder.attach(net.links[0])
        recorder.detach(tap.label)
        assert net.links[0].taps == []
        with pytest.raises(RecorderError):
            recorder.detach(tap.label)

    def test_attach_unknown_link_rejected(self):
        sim, net, _h1, _h2 = small_net()
        recorder = FlightRecorder(net)
        with pytest.raises(RecorderError):
            recorder.attach("no-such-link")


class TestPcapExport:
    def test_round_trip(self, tmp_path):
        sim, net, h1, h2 = small_net()
        recorder = FlightRecorder(net)
        recorder.attach(net.links[0])
        for _ in range(3):
            h1.send_udp(h2.ip, 5000, b"hello pcap")
        net.run(1.0)
        path = tmp_path / "flight.pcap"
        count = recorder.export_pcap(str(path))
        assert count > 0
        blob = path.read_bytes()
        magic, major, minor = struct.unpack("!IHH", blob[:8])
        assert magic == 0xA1B2C3D4
        assert (major, minor) == (2, 4)
        linktype = struct.unpack("!I", blob[20:24])[0]
        assert linktype == 1  # Ethernet
        # walk every record and re-parse the frames
        offset = 24
        parsed = 0
        while offset < len(blob):
            _sec, _usec, caplen, wirelen = struct.unpack(
                "!IIII", blob[offset:offset + 16])
            assert caplen == wirelen
            frame = Ethernet.unpack(blob[offset + 16:offset + 16 + caplen])
            assert frame.find(IPv4) is not None or frame.payload
            offset += 16 + caplen
            parsed += 1
        assert parsed == count

    def test_direction_filter_avoids_duplicates(self, tmp_path):
        sim, net, h1, h2 = small_net()
        recorder = FlightRecorder(net)
        tap = recorder.attach(net.links[0])
        h1.send_udp(h2.ip, 5000, b"x")
        net.run(0.5)
        rx_only = recorder.export_pcap(str(tmp_path / "rx.pcap"))
        both = recorder.export_pcap(str(tmp_path / "both.pcap"),
                                    direction="both")
        assert both == len(tap.records)
        assert rx_only == both // 2


class TestTraceJoin:
    def test_probe_frames_carry_trace_ids(self, escape):
        chain = escape.deploy_service(SG)
        taps = escape.recorder.attach_chain(chain)
        assert taps
        escape.run(2.0)
        monitor = escape.sla_monitors["rec-chain"]
        report = monitor.last_report("h1", "h2")
        records = escape.recorder.records(trace_id=report.trace_id)
        assert records
        for record in records:
            assert record.probe.chain == "rec-chain"
            assert record.trace_id == report.trace_id

    def test_join_resolves_to_sla_probe_span(self, escape):
        chain = escape.deploy_service(SG)
        escape.recorder.attach_chain(chain)
        escape.run(2.0)
        monitor = escape.sla_monitors["rec-chain"]
        report = monitor.last_report("h1", "h2")
        record = escape.recorder.records(trace_id=report.trace_id)[0]
        span = escape.recorder.find_span(record)
        assert span is not None
        assert span.name == "sla.probe"
        assert span.tags["chain"] == "rec-chain"

    def test_non_probe_frames_have_no_trace(self):
        sim, net, h1, h2 = small_net()
        recorder = FlightRecorder(net)
        tap = recorder.attach(net.links[0])
        h1.send_udp(h2.ip, 5000, b"ordinary traffic")
        net.run(0.5)
        udp_records = [record for record in tap.records
                       if record.frame.find(UDP) is not None]
        assert udp_records
        assert all(record.trace_id is None for record in udp_records)


class TestChainAndPortTaps:
    def test_attach_chain_covers_mapped_links(self, escape):
        chain = escape.deploy_service(SG)
        taps = escape.recorder.attach_chain(chain)
        tapped = {tap.link.name for tap in taps}
        # the access links of both SAPs are on the mapped paths
        h1_links = {link.name for link
                    in escape.net.links_of("h1")}
        h2_links = {link.name for link
                    in escape.net.links_of("h2")}
        assert tapped & h1_links
        assert tapped & h2_links

    def test_attach_port_narrows_to_interface(self, escape):
        switch = escape.net.get("s1")
        intf = next(iter(switch.interfaces.values()))
        port_no = switch.port_number(intf)
        tap = escape.recorder.attach_port("s1", port_no)
        assert tap.port == intf.name
        escape.deploy_service(SG)
        escape.run(1.0)
        assert all(record.port == intf.name for record in tap.records)
        assert tap.matched <= tap.observed

    def test_cli_record_commands(self, escape, tmp_path):
        cli = escape.cli()
        assert "no taps" in cli.run_command("record")
        escape.deploy_service(SG)
        out = cli.run_command("record chain rec-chain")
        assert "recording" in out
        escape.run(1.0)
        assert "KEPT" in cli.run_command("record status")
        pcap = tmp_path / "cli.pcap"
        out = cli.run_command("record pcap %s" % pcap)
        assert "wrote" in out
        assert pcap.exists()
        assert "stopped" in cli.run_command("record stop all")
        assert "no taps" in cli.run_command("record")
