"""End-to-end test of VLAN-granularity steering (the STEER1 ablation's
other half): chains deployed with steering_mode='vlan' must carry
traffic exactly like exact-mode chains."""

import pytest

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "s3", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 4, "mem": 2048},
        {"name": "nc2", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.001},
        {"from": "s2", "to": "s3", "delay": 0.001},
        {"from": "h2", "to": "s3", "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc2", "to": "s3", "delay": 0.0005},
        {"from": "nc2", "to": "s3", "delay": 0.0005},
    ],
}

SG = {
    "name": "vlan-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow icmp, drop all"}}],
    "chain": ["h1", "fw", "h2"],
}


@pytest.fixture
def vlan_escape():
    framework = ESCAPE.from_topology(load_topology(TOPOLOGY),
                                     steering_mode="vlan")
    framework.start()
    return framework


class TestVlanSteeredChain:
    def test_ping_through_vlan_steered_chain(self, vlan_escape):
        chain = vlan_escape.deploy_service(SG)
        h1 = vlan_escape.net.get("h1")
        h2 = vlan_escape.net.get("h2")
        result = h1.ping(h2.ip, count=5, interval=0.2)
        vlan_escape.run(3.0)
        assert result.received == 5
        assert int(chain.read_handler("fw", "fw.passed")) >= 5

    def test_vnf_receives_untagged_frames(self, vlan_escape):
        """Tags live only inside the steered core; the VNF must see the
        original untagged frames (it parses IP directly)."""
        chain = vlan_escape.deploy_service(SG)
        h1 = vlan_escape.net.get("h1")
        h2 = vlan_escape.net.get("h2")
        h1.ping(h2.ip, count=3, interval=0.1)
        vlan_escape.run(2.0)
        # the firewall classified (i.e. successfully parsed) the pings
        assert int(chain.read_handler("fw", "fw.passed")) >= 3

    def test_host_receives_untagged_frames(self, vlan_escape):
        """The last hop strips the tag: h2's stack accepted the echo
        requests (it answered them), so no tag leaked to the host."""
        vlan_escape.deploy_service(SG)
        h1 = vlan_escape.net.get("h1")
        h2 = vlan_escape.net.get("h2")
        result = h1.ping(h2.ip, count=3, interval=0.1)
        vlan_escape.run(2.0)
        assert result.received == 3

    def test_policy_still_enforced(self, vlan_escape):
        chain = vlan_escape.deploy_service(SG)
        h1 = vlan_escape.net.get("h1")
        h2 = vlan_escape.net.get("h2")
        h1.send_udp(h2.ip, 9999, b"blocked")
        vlan_escape.run(0.5)
        assert h2.udp_rx_count == 0
        assert int(chain.read_handler("fw", "fw.dropped")) >= 1

    def test_two_chains_get_distinct_tags(self, vlan_escape):
        vlan_escape.deploy_service(SG)
        second = dict(SG)
        second["name"] = "vlan-chain-2"
        second["saps"] = ["h2", "h1"]
        second["chain"] = ["h2", "fw", "h1"]
        vlan_escape.deploy_service(second, return_path="none")
        vlans = {installed.vlan
                 for installed in vlan_escape.steering.paths.values()
                 if installed.vlan is not None}
        assert len(vlans) >= 2

    def test_undeploy_restores(self, vlan_escape):
        chain = vlan_escape.deploy_service(SG)
        chain.undeploy()
        vlan_escape.run(0.1)
        h1 = vlan_escape.net.get("h1")
        h2 = vlan_escape.net.get("h2")
        h1.send_udp(h2.ip, 9999, b"open again")
        vlan_escape.run(1.0)
        assert h2.udp_rx_count == 1
