"""Tests for the mapping algorithms."""

import pytest

from repro.core import (BacktrackingMapper, GreedyMapper, MappingError,
                        ResourceView, ServiceGraph, ShortestPathMapper,
                        default_catalog)

MAPPERS = [GreedyMapper, ShortestPathMapper, BacktrackingMapper]


def star_view(containers=2, cpu=2.0, mem=1024.0):
    """h1 -- s1 -- s2 -- h2 with containers hanging off each switch."""
    view = ResourceView()
    view.add_sap("h1")
    view.add_sap("h2")
    view.add_switch("s1", 1)
    view.add_switch("s2", 2)
    view.add_link("h1", "s1", delay=0.001)
    view.add_link("s1", "s2", delay=0.002, bandwidth=100e6)
    view.add_link("h2", "s2", delay=0.001)
    for index in range(containers):
        name = "nc%d" % (index + 1)
        view.add_container(name, cpu=cpu, mem=mem)
        switch = "s1" if index % 2 == 0 else "s2"
        view.add_link(name, switch, delay=0.0005)
    return view


def chain_sg(vnf_count=1, vnf_type="firewall", bandwidth=0.0,
             max_delay=None):
    sg = ServiceGraph("test-chain")
    sg.add_sap("h1")
    sg.add_sap("h2")
    names = []
    for index in range(vnf_count):
        name = "v%d" % index
        sg.add_vnf(name, vnf_type)
        names.append(name)
    sg.add_chain(["h1"] + names + ["h2"], bandwidth=bandwidth)
    if max_delay is not None:
        sg.add_requirement("h1", "h2", max_delay=max_delay)
    return sg


@pytest.mark.parametrize("mapper_cls", MAPPERS)
class TestAllMappers:
    def test_single_vnf_mapped(self, mapper_cls):
        mapper = mapper_cls(default_catalog())
        view = star_view()
        mapping = mapper.map(chain_sg(1), view)
        assert mapping.vnf_placement["v0"] in ("nc1", "nc2")
        assert len(mapping.link_paths) == 2

    def test_resources_reserved_on_view(self, mapper_cls):
        mapper = mapper_cls(default_catalog())
        view = star_view(containers=1, cpu=0.6)
        mapper.map(chain_sg(1), view)  # firewall needs 0.5 cpu
        with pytest.raises(MappingError):
            mapper.map(chain_sg(1), view)  # no room for a second

    def test_release_frees_resources(self, mapper_cls):
        mapper = mapper_cls(default_catalog())
        view = star_view(containers=1, cpu=0.6)
        mapping = mapper.map(chain_sg(1), view)
        mapper.release(mapping, view)
        mapper.map(chain_sg(1), view)  # fits again

    def test_infeasible_cpu_rejected(self, mapper_cls):
        mapper = mapper_cls(default_catalog())
        view = star_view(cpu=0.1)
        with pytest.raises(MappingError):
            mapper.map(chain_sg(1), view)

    def test_multiple_vnfs_spread_when_needed(self, mapper_cls):
        mapper = mapper_cls(default_catalog())
        # each container fits exactly one firewall (0.5 cpu)
        view = star_view(containers=3, cpu=0.6)
        mapping = mapper.map(chain_sg(3), view)
        assert len(set(mapping.vnf_placement.values())) == 3

    def test_paths_are_connected(self, mapper_cls):
        mapper = mapper_cls(default_catalog())
        view = star_view()
        mapping = mapper.map(chain_sg(2), view)
        chain = mapping.sg.chain_from("h1")
        for src, dst in zip(chain, chain[1:]):
            path = mapping.link_paths[(src, dst)]
            assert len(path) >= 2
            # endpoints anchor correctly
            start = src if src in mapping.sg.saps \
                else mapping.vnf_placement[src]
            end = dst if dst in mapping.sg.saps \
                else mapping.vnf_placement[dst]
            assert path[0] == start
            assert path[-1] == end

    def test_bandwidth_reserved_along_paths(self, mapper_cls):
        mapper = mapper_cls(default_catalog())
        view = star_view()
        mapper.map(chain_sg(1, bandwidth=60e6), view)
        # the s1--s2 spine has 100 Mbit/s; a second 60 Mbit/s chain
        # cannot cross it
        with pytest.raises(MappingError):
            mapper.map(
                ServiceGraphFactory.second_chain(bandwidth=60e6), view)


class ServiceGraphFactory:
    @staticmethod
    def second_chain(bandwidth=0.0):
        sg = ServiceGraph("second")
        sg.add_sap("h1")
        sg.add_sap("h2")
        sg.add_vnf("w0", "firewall")
        sg.add_chain(["h1", "w0", "h2"], bandwidth=bandwidth)
        return sg


class TestShortestPathSpecifics:
    def test_prefers_nearby_container(self):
        view = ResourceView()
        view.add_sap("h1")
        view.add_sap("h2")
        view.add_switch("s1", 1)
        view.add_switch("s2", 2)
        view.add_link("h1", "s1", delay=0.001)
        view.add_link("s1", "s2", delay=0.010)
        view.add_link("h2", "s2", delay=0.001)
        view.add_container("near", cpu=4, mem=4096)
        view.add_container("far", cpu=4, mem=4096)
        view.add_link("near", "s1", delay=0.0001)
        view.add_link("far", "s2", delay=0.0001)
        mapper = ShortestPathMapper(default_catalog())
        mapping = mapper.map(chain_sg(1), view)
        assert mapping.vnf_placement["v0"] == "near"

    def test_delay_requirement_enforced(self):
        view = star_view()
        mapper = ShortestPathMapper(default_catalog())
        with pytest.raises(MappingError):
            mapper.map(chain_sg(1, max_delay=0.0001), view)
        mapper.map(chain_sg(1, max_delay=1.0), view)


class TestBacktrackingSpecifics:
    def test_finds_global_optimum_greedy_misses(self):
        """Two VNFs, two containers: nc-far sits 10 ms away.  Greedy
        first-fit puts both VNFs wherever they fit first; backtracking
        must place both in the near container (it fits both)."""
        view = ResourceView()
        view.add_sap("h1")
        view.add_sap("h2")
        view.add_switch("s1", 1)
        view.add_link("h1", "s1", delay=0.001)
        view.add_link("h2", "s1", delay=0.001)
        view.add_container("zz-near", cpu=2.0, mem=2048)
        view.add_container("aa-far", cpu=2.0, mem=2048)
        view.add_link("zz-near", "s1", delay=0.0001)
        view.add_link("aa-far", "s1", delay=0.010)
        sg = chain_sg(2)
        backtracking = BacktrackingMapper(default_catalog())
        mapping = backtracking.map(sg, view.copy())
        assert set(mapping.vnf_placement.values()) == {"zz-near"}
        # greedy picks the alphabetically-first container dict order:
        greedy = GreedyMapper(default_catalog())
        greedy_mapping = greedy.map(sg, view.copy())
        assert greedy_mapping.vnf_placement["v0"] == "zz-near" \
            or greedy_mapping.vnf_placement["v0"] == "aa-far"

    def test_total_delay_not_worse_than_others(self):
        view = star_view(containers=4)
        sg = chain_sg(3)
        catalog = default_catalog()
        results = {}
        for mapper_cls in MAPPERS:
            mapping = mapper_cls(catalog).map(sg, view.copy())
            results[mapper_cls.name] = mapping.total_delay(view)
        assert results["backtracking"] <= results["greedy"] + 1e-12
        assert results["backtracking"] <= results["shortest-path"] + 1e-12

    def test_requirement_pruning(self):
        view = star_view()
        mapper = BacktrackingMapper(default_catalog())
        with pytest.raises(MappingError):
            mapper.map(chain_sg(1, max_delay=0.0001), view)

    def test_step_budget_limits_search(self):
        view = star_view(containers=6)
        mapper = BacktrackingMapper(default_catalog(), max_steps=1)
        # with an absurd budget the search returns the first (and only
        # explored) assignment or nothing; either way it must not hang
        try:
            mapper.map(chain_sg(4), view)
        except MappingError:
            pass


class TestMappingObject:
    def test_chain_delay_sums_segments(self):
        view = star_view()
        mapper = GreedyMapper(default_catalog())
        mapping = mapper.map(chain_sg(1), view)
        total = mapping.chain_delay(view, "h1")
        by_hand = sum(view.path_delay(path)
                      for path in mapping.link_paths.values())
        assert total == pytest.approx(by_hand)

    def test_total_hops(self):
        view = star_view()
        mapper = GreedyMapper(default_catalog())
        mapping = mapper.map(chain_sg(1), view)
        assert mapping.total_hops() >= 2
