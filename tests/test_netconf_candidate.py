"""Tests for the candidate datastore workflow: lock, edit, commit,
discard (RFC 6241 §8.3/§7.5)."""

import xml.etree.ElementTree as ET

import pytest

from repro.netconf import (NetconfClient, NetconfServer, RpcError,
                           TransportPair)
from repro.netconf import messages as nc
from repro.sim import Simulator


def leaf(tag, text):
    node = ET.Element(nc.qn(tag, "urn:test"))
    node.text = text
    return node


@pytest.fixture
def session():
    sim = Simulator()
    pair = TransportPair(sim, latency=0.001)
    server = NetconfServer(pair.server)
    client = NetconfClient(pair.client)
    client.wait_connected()
    sim.run(until=sim.now + 0.1)
    return sim, server, client


class TestCandidateWorkflow:
    def test_capability_advertised(self, session):
        _sim, _server, client = session
        assert nc.CAP_CANDIDATE in client.server_capabilities

    def test_edit_candidate_leaves_running_untouched(self, session):
        sim, _server, client = session
        client.edit_config(leaf("knob", "7"),
                           target="candidate").result(sim)
        candidate = client.get_config("candidate").result(sim)
        running = client.get_config("running").result(sim)
        assert candidate.find(nc.qn("data")) \
            .find("{urn:test}knob").text == "7"
        assert running.find(nc.qn("data")).find("{urn:test}knob") is None

    def test_commit_applies_candidate(self, session):
        sim, _server, client = session
        client.edit_config(leaf("knob", "7"),
                           target="candidate").result(sim)
        client.commit().result(sim)
        running = client.get_config("running").result(sim)
        assert running.find(nc.qn("data")) \
            .find("{urn:test}knob").text == "7"

    def test_discard_resets_candidate(self, session):
        sim, _server, client = session
        client.edit_config(leaf("stable", "1")).result(sim)  # running
        client.edit_config(leaf("experiment", "x"),
                           target="candidate").result(sim)
        client.discard_changes().result(sim)
        candidate = client.get_config("candidate").result(sim)
        data = candidate.find(nc.qn("data"))
        assert data.find("{urn:test}experiment") is None
        assert data.find("{urn:test}stable").text == "1"

    def test_commit_then_more_edits_then_commit(self, session):
        sim, _server, client = session
        client.edit_config(leaf("v", "1"), target="candidate").result(sim)
        client.commit().result(sim)
        client.edit_config(leaf("v", "2"), target="candidate").result(sim)
        client.commit().result(sim)
        running = client.get_config("running").result(sim)
        values = running.find(nc.qn("data")).findall("{urn:test}v")
        assert len(values) == 1
        assert values[0].text == "2"

    def test_no_candidate_server_rejects_commit(self):
        sim = Simulator()
        pair = TransportPair(sim)
        NetconfServer(pair.server, candidate=False)
        client = NetconfClient(pair.client)
        client.wait_connected()
        with pytest.raises(RpcError) as exc:
            client.commit().result(sim)
        assert exc.value.tag == "operation-not-supported"


class TestLocking:
    def test_lock_unlock_cycle(self, session):
        sim, server, client = session
        client.lock("running").result(sim)
        assert server.locks["running"] == server.session_id
        client.unlock("running").result(sim)
        assert "running" not in server.locks

    def test_lock_reentrant_for_same_session(self, session):
        sim, _server, client = session
        client.lock("running").result(sim)
        client.lock("running").result(sim)  # no error

    def test_foreign_lock_blocks_edits(self, session):
        sim, server, client = session
        server.locks["running"] = 9999  # some other session holds it
        with pytest.raises(RpcError) as exc:
            client.edit_config(leaf("x", "1")).result(sim)
        assert exc.value.tag == "lock-denied"

    def test_foreign_lock_blocks_lock(self, session):
        sim, server, client = session
        server.locks["candidate"] = 9999
        with pytest.raises(RpcError):
            client.lock("candidate").result(sim)

    def test_lock_unknown_datastore(self, session):
        sim, _server, client = session
        with pytest.raises(RpcError):
            client.lock("startup").result(sim)

    def test_validate_is_accepted(self, session):
        sim, _server, client = session
        operation = ET.Element(nc.qn("validate"))
        reply = client.request(operation).result(sim)
        assert reply.find(nc.qn("ok")) is not None
