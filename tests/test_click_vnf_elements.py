"""Tests for the VNF building blocks: switches, shapers, NAT, firewall,
DPI and the device splice."""

import pytest

from repro.click import ClickPacket, ConfigError, Router
from repro.click.elements.device import Device
from repro.packet import Ethernet, IPv4, TCP, UDP
from repro.sim import Simulator


def ip_packet(proto_payload=None, srcip="10.0.0.1", dstip="10.0.0.2",
              protocol=17):
    return ClickPacket.from_header(Ethernet(
        src="00:00:00:00:00:01", dst="00:00:00:00:00:02",
        type=Ethernet.IP_TYPE,
        payload=IPv4(srcip=srcip, dstip=dstip, protocol=protocol,
                     payload=proto_payload)))


class TestTee:
    def test_clones_to_all_outputs(self):
        router = Router.from_config(
            "Idle -> t :: Tee;"
            "t[0] -> a :: Counter -> Discard;"
            "t[1] -> b :: Counter -> Discard;"
            "t[2] -> c :: Counter -> Discard;")
        router.start()
        router.element("t").push(0, ClickPacket(b"x"))
        for name in "abc":
            assert router.read_handler("%s.count" % name) == "1"

    def test_clones_are_independent(self):
        router = Router.from_config(
            "Idle -> t :: Tee;"
            "t[0] -> a :: Counter -> Discard;"
            "t[1] -> b :: Counter -> Discard;")
        router.start()
        received = []
        router.element("a").push = lambda port, pkt: received.append(pkt)
        original = ClickPacket(b"x")
        router.element("t").push(0, original)
        assert received[0] is not original  # clone went to output 0

    def test_declared_count_checked(self):
        router = Router.from_config(
            "Idle -> t :: Tee(3);"
            "t[0] -> d0 :: Discard; t[1] -> d1 :: Discard;")
        with pytest.raises(ConfigError):
            router.start()


class TestSwitch:
    def test_default_output(self):
        router = Router.from_config(
            "Idle -> s :: Switch;"
            "s[0] -> a :: Counter -> Discard;"
            "s[1] -> b :: Counter -> Discard;")
        router.start()
        router.element("s").push(0, ClickPacket(b"x"))
        assert router.read_handler("a.count") == "1"

    def test_retarget_via_handler(self):
        router = Router.from_config(
            "Idle -> s :: Switch;"
            "s[0] -> a :: Counter -> Discard;"
            "s[1] -> b :: Counter -> Discard;")
        router.start()
        router.write_handler("s.switch", "1")
        router.element("s").push(0, ClickPacket(b"x"))
        assert router.read_handler("b.count") == "1"

    def test_negative_drops(self):
        router = Router.from_config(
            "Idle -> s :: Switch;"
            "s[0] -> a :: Counter -> Discard;")
        router.start()
        router.write_handler("s.switch", "-1")
        router.element("s").push(0, ClickPacket(b"x"))
        assert router.read_handler("a.count") == "0"

    def test_out_of_range_write_rejected(self):
        router = Router.from_config(
            "Idle -> s :: Switch; s[0] -> Discard;")
        router.start()
        with pytest.raises(ConfigError):
            router.write_handler("s.switch", "5")


class TestRoundRobinAndHash:
    def test_round_robin_rotation(self):
        router = Router.from_config(
            "Idle -> rr :: RoundRobinSwitch;"
            "rr[0] -> a :: Counter -> Discard;"
            "rr[1] -> b :: Counter -> Discard;")
        router.start()
        for _ in range(6):
            router.element("rr").push(0, ClickPacket(b"x"))
        assert router.read_handler("a.count") == "3"
        assert router.read_handler("b.count") == "3"

    def test_hash_switch_flow_affinity(self):
        router = Router.from_config(
            "Idle -> h :: HashSwitch(26, 8);"  # IP src+dst region
            "h[0] -> a :: Counter -> Discard;"
            "h[1] -> b :: Counter -> Discard;")
        router.start()
        element = router.element("h")
        for _ in range(5):
            element.push(0, ip_packet(srcip="10.0.0.1"))
        counts = (int(router.read_handler("a.count")),
                  int(router.read_handler("b.count")))
        # same flow -> same output every time
        assert sorted(counts) == [0, 5]

    def test_hash_switch_spreads_flows(self):
        router = Router.from_config(
            "Idle -> h :: HashSwitch(26, 8);"
            "h[0] -> a :: Counter -> Discard;"
            "h[1] -> b :: Counter -> Discard;")
        router.start()
        element = router.element("h")
        for index in range(32):
            element.push(0, ip_packet(srcip="10.0.%d.1" % index))
        assert int(router.read_handler("a.count")) > 0
        assert int(router.read_handler("b.count")) > 0

    def test_random_sample_deterministic_per_seed(self):
        def run_once():
            router = Router.from_config(
                "Idle -> r :: RandomSample(0.5, SEED 42)"
                " -> c :: Counter -> Discard;")
            router.start()
            for _ in range(100):
                router.element("r").push(0, ClickPacket(b"x"))
            return router.read_handler("c.count")
        assert run_once() == run_once()

    def test_random_sample_probability_bounds(self):
        with pytest.raises(ConfigError):
            Router.from_config("Idle -> RandomSample(1.5) -> Discard;")


class TestShapers:
    def test_shaper_limits_rate(self):
        router = Router.from_config(
            "s :: InfiniteSource -> q :: Queue(10000)"
            " -> sh :: Shaper(50) -> u :: Unqueue"
            " -> c :: Counter -> Discard;")
        router.start()
        router.sim.run(until=2.0)
        count = int(router.read_handler("c.count"))
        assert 90 <= count <= 110  # ~50 pps over 2 s

    def test_shaper_runtime_rate_change(self):
        router = Router.from_config(
            "s :: InfiniteSource -> Queue(100000) -> sh :: Shaper(10)"
            " -> Unqueue -> c :: Counter -> Discard;")
        router.start()
        router.sim.run(until=1.0)
        router.write_handler("sh.rate", "1000")
        before = int(router.read_handler("c.count"))
        router.sim.run(until=2.0)
        assert int(router.read_handler("c.count")) - before > 500

    def test_bandwidth_shaper_byte_rate(self):
        # 100-byte packets at 5000 B/s -> ~50 pps
        router = Router.from_config(
            "s :: InfiniteSource(DATA %s) -> Queue(100000)"
            " -> bw :: BandwidthShaper(5000) -> Unqueue"
            " -> c :: Counter -> Discard;" % ("x" * 100))
        router.start()
        router.sim.run(until=2.0)
        count = int(router.read_handler("c.count"))
        assert 80 <= count <= 130

    def test_delay_queue_holds_packets(self):
        sim = Simulator()
        router = Router.from_config(
            "Idle -> dq :: DelayQueue(0.5) -> Unqueue"
            " -> c :: Counter -> Discard;", sim=sim)
        router.start()
        router.element("dq").push(0, ClickPacket(b"x"))
        sim.run(until=0.4)
        assert router.read_handler("c.count") == "0"
        sim.run(until=0.7)
        assert router.read_handler("c.count") == "1"

    def test_red_drops_early_between_thresholds(self):
        router = Router.from_config(
            "Idle -> red :: RED(5, 20, 1.0, 100);"
            "red -> Unqueue -> Discard;")
        router.start()
        red = router.element("red")
        for _ in range(50):
            red.push(0, ClickPacket(b"x"))
        assert int(red.read_handler("early_drops")) > 0
        assert int(red.read_handler("length")) <= 20

    def test_red_bad_thresholds_rejected(self):
        with pytest.raises(ConfigError):
            Router.from_config(
                "Idle -> RED(20, 5, 0.1) -> Unqueue -> Discard;")


class TestIPFilter:
    def _router(self, rules):
        router = Router.from_config(
            "fw :: IPFilter(%s); Idle -> fw;"
            "fw -> ok :: Counter -> Discard;" % rules)
        router.start()
        return router

    def test_allow_rule(self):
        router = self._router("allow udp")
        router.element("fw").push(0, ip_packet(UDP(), protocol=17))
        assert router.read_handler("ok.count") == "1"

    def test_default_deny(self):
        router = self._router("allow udp")
        router.element("fw").push(0, ip_packet(TCP(), protocol=6))
        assert router.read_handler("ok.count") == "0"
        assert router.read_handler("fw.dropped") == "1"

    def test_first_match_wins(self):
        router = self._router(
            "drop src host 10.0.0.66, allow all")
        fw = router.element("fw")
        fw.push(0, ip_packet(srcip="10.0.0.66"))
        fw.push(0, ip_packet(srcip="10.0.0.1"))
        assert router.read_handler("fw.dropped") == "1"
        assert router.read_handler("fw.passed") == "1"

    def test_deny_alias(self):
        router = self._router("deny all")
        router.element("fw").push(0, ip_packet())
        assert router.read_handler("fw.dropped") == "1"

    def test_runtime_rule_addition(self):
        router = self._router("allow all")
        router.write_handler("fw.add_rule", "drop udp")
        # the new rule appends after "allow all", so it never fires;
        # verify via the rules dump instead
        assert "drop udp" in router.read_handler("fw.rules")

    def test_drop_tap_output(self):
        router = Router.from_config(
            "fw :: IPFilter(drop all); Idle -> fw;"
            "fw[0] -> ok :: Counter -> Discard;"
            "fw[1] -> tap :: Counter -> Discard;")
        router.start()
        router.element("fw").push(0, ip_packet())
        assert router.read_handler("tap.count") == "1"

    def test_bad_rule_rejected(self):
        with pytest.raises(ConfigError):
            self._router("permit all")

    def test_rule_hit_counters(self):
        router = self._router("allow udp, drop all")
        fw = router.element("fw")
        fw.push(0, ip_packet(UDP(), protocol=17))
        fw.push(0, ip_packet(TCP(), protocol=6))
        dump = router.read_handler("fw.rules")
        assert "0 allow udp (hits 1)" in dump
        assert "1 drop all (hits 1)" in dump


class TestIPRewriter:
    def _router(self):
        router = Router.from_config(
            "rw :: IPRewriter(192.168.0.1);"
            "i0, i1 :: Idle; i0 -> [0]rw; i1 -> [1]rw;"
            "rw[0] -> out :: Counter -> Discard;"
            "rw[1] -> back :: Counter -> Discard;")
        router.start()
        return router

    def test_outbound_rewrites_source(self):
        router = self._router()
        captured = []
        router.element("out").push = lambda p, pkt: captured.append(pkt)
        router.element("rw").push(0, ip_packet(
            UDP(srcport=5555, dstport=53), srcip="10.0.0.5"))
        ip = captured[0].ip()
        assert str(ip.srcip) == "192.168.0.1"
        udp = captured[0].udp()
        assert udp.srcport >= 10000

    def test_inbound_reverse_mapping(self):
        router = self._router()
        outbound = []
        router.element("out").push = lambda p, pkt: outbound.append(pkt)
        router.element("rw").push(0, ip_packet(
            UDP(srcport=5555, dstport=53), srcip="10.0.0.5"))
        ext_port = outbound[0].udp().srcport
        inbound = []
        router.element("back").push = lambda p, pkt: inbound.append(pkt)
        reply = ip_packet(UDP(srcport=53, dstport=ext_port),
                          srcip="8.8.8.8", dstip="192.168.0.1")
        router.element("rw").push(1, reply)
        ip = inbound[0].ip()
        assert str(ip.dstip) == "10.0.0.5"
        assert inbound[0].udp().dstport == 5555

    def test_same_flow_reuses_mapping(self):
        router = self._router()
        rw = router.element("rw")
        for _ in range(3):
            rw.push(0, ip_packet(UDP(srcport=5555, dstport=53),
                                 srcip="10.0.0.5"))
        assert router.read_handler("rw.mappings") == "1"

    def test_distinct_flows_get_distinct_ports(self):
        router = self._router()
        rw = router.element("rw")
        rw.push(0, ip_packet(UDP(srcport=1111, dstport=53),
                             srcip="10.0.0.5"))
        rw.push(0, ip_packet(UDP(srcport=2222, dstport=53),
                             srcip="10.0.0.5"))
        assert router.read_handler("rw.mappings") == "2"

    def test_unknown_inbound_dropped(self):
        router = self._router()
        router.element("rw").push(1, ip_packet(
            UDP(srcport=53, dstport=44444), dstip="192.168.0.1"))
        assert router.read_handler("rw.inbound_drops") == "1"

    def test_flush(self):
        router = self._router()
        router.element("rw").push(0, ip_packet(UDP(srcport=1, dstport=2)))
        router.write_handler("rw.flush", "")
        assert router.read_handler("rw.mappings") == "0"


class TestStringMatcher:
    def _router(self):
        router = Router.from_config(
            'dpi :: StringMatcher("EVIL", "WORM"); Idle -> dpi;'
            "dpi[0] -> evil :: Counter -> Discard;"
            "dpi[1] -> worm :: Counter -> Discard;"
            "dpi[2] -> clean :: Counter -> Discard;")
        router.start()
        return router

    def test_signature_dispatch(self):
        router = self._router()
        dpi = router.element("dpi")
        dpi.push(0, ip_packet(UDP(payload=b"xxEVILxx")))
        dpi.push(0, ip_packet(UDP(payload=b"WORM here")))
        dpi.push(0, ip_packet(UDP(payload=b"benign")))
        assert router.read_handler("evil.count") == "1"
        assert router.read_handler("worm.count") == "1"
        assert router.read_handler("clean.count") == "1"

    def test_first_signature_wins(self):
        router = self._router()
        router.element("dpi").push(
            0, ip_packet(UDP(payload=b"WORM and EVIL")))
        assert router.read_handler("evil.count") == "1"
        assert router.read_handler("worm.count") == "0"

    def test_counters_and_reset(self):
        router = self._router()
        dpi = router.element("dpi")
        dpi.push(0, ip_packet(UDP(payload=b"EVIL")))
        assert router.read_handler("dpi.match0_count") == "1"
        assert router.read_handler("dpi.total") == "1"
        router.write_handler("dpi.reset", "")
        assert router.read_handler("dpi.total") == "0"


class TestDeviceSplice:
    def test_from_device_injects(self):
        sim = Simulator()
        router = Router.from_config(
            "FromDevice(eth0) -> c :: Counter -> Discard;", sim=sim)
        device = Device("eth0")
        router.device_map = {"eth0": device}
        router.start()
        device.deliver(b"frame-bytes")
        assert router.read_handler("c.count") == "1"
        assert device.rx_packets == 1

    def test_to_device_transmits(self):
        sim = Simulator()
        router = Router.from_config(
            "Idle -> t :: ToDevice(eth0);", sim=sim)
        device = Device("eth0")
        sent = []
        device.transmit = sent.append
        router.device_map = {"eth0": device}
        router.start()
        router.element("t").push(0, ClickPacket(b"out-bytes"))
        assert sent == [b"out-bytes"]

    def test_to_device_pull_mode_drains_queue(self):
        sim = Simulator()
        router = Router.from_config(
            "src :: InfiniteSource(LIMIT 5) -> Queue(10)"
            " -> ToDevice(eth0);", sim=sim)
        device = Device("eth0")
        sent = []
        device.transmit = sent.append
        router.device_map = {"eth0": device}
        router.start()
        sim.run(until=0.5)
        assert len(sent) == 5

    def test_missing_device_raises(self):
        router = Router.from_config(
            "FromDevice(ghost0) -> Discard;")
        router.device_map = {}
        with pytest.raises(ConfigError):
            router.start()

    def test_roundtrip_through_vnf(self):
        """Frames entering in0 exit out0 after the pipeline."""
        sim = Simulator()
        router = Router.from_config(
            "FromDevice(in0) -> c :: Counter -> ToDevice(out0);", sim=sim)
        in_dev, out_dev = Device("in0"), Device("out0")
        sent = []
        out_dev.transmit = sent.append
        router.device_map = {"in0": in_dev, "out0": out_dev}
        router.start()
        in_dev.deliver(b"abc")
        assert sent == [b"abc"]
        assert router.read_handler("c.count") == "1"
