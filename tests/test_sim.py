"""Tests for the discrete-event simulation core."""

import pytest

from repro.sim import Process, Signal, SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callback_runs_at_scheduled_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5]

    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_args_are_passed(self):
        sim = Simulator()
        result = []
        sim.schedule(0.0, lambda a, b: result.append(a + b), 2, 3)
        sim.run()
        assert result == [5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        times = []
        sim.schedule_at(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0]

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(1.0, second)

        def second():
            times.append(sim.now)

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 2.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, True)
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run() == 0

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        event.cancel()
        assert sim.pending == 1


class TestRunControl:
    def test_run_until_stops_the_clock_there(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run(until=2.0)
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_run_until_then_resume(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.run(until=2.0)
        assert times == []
        sim.run()
        assert times == [5.0]

    def test_run_advances_to_until_with_empty_heap(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events(self):
        sim = Simulator()
        count = []
        for _ in range(10):
            sim.schedule(1.0, count.append, 1)
        executed = sim.run(max_events=3)
        assert executed == 3
        assert len(count) == 3

    def test_step(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "x")
        assert sim.step() is True
        assert out == ["x"]
        assert sim.step() is False

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() is None
        event = sim.schedule(3.0, lambda: None)
        assert sim.peek() == 3.0
        event.cancel()
        assert sim.peek() is None

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(0.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(0.5, lambda: None)
        sim.run()
        assert sim.processed == 4


class TestProcess:
    def test_yield_number_sleeps(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield 2.0
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0.0, 2.0]

    def test_yield_none_resumes_immediately(self):
        sim = Simulator()
        trace = []

        def proc():
            yield None
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0.0]

    def test_return_value_recorded(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return 42

        process = sim.process(proc())
        sim.run()
        assert process.done
        assert process.result == 42

    def test_wait_on_signal(self):
        sim = Simulator()
        signal = sim.signal()
        got = []

        def proc():
            value = yield signal
            got.append((sim.now, value))

        sim.process(proc())
        sim.schedule(3.0, signal.fire, "hello")
        sim.run()
        assert got == [(3.0, "hello")]

    def test_signal_fire_is_idempotent(self):
        sim = Simulator()
        signal = sim.signal()
        signal.fire("first")
        signal.fire("second")
        assert signal.value == "first"

    def test_wait_on_already_fired_signal(self):
        sim = Simulator()
        signal = sim.signal()
        signal.fire("early")
        got = []

        def proc():
            value = yield signal
            got.append(value)

        sim.process(proc())
        sim.run()
        assert got == ["early"]

    def test_wait_on_other_process(self):
        sim = Simulator()
        trace = []

        def worker():
            yield 2.0
            return "done"

        def waiter(target):
            result = yield target
            trace.append((sim.now, result))

        target = sim.process(worker())
        sim.process(waiter(target))
        sim.run()
        assert trace == [(2.0, "done")]

    def test_interrupt_stops_process(self):
        sim = Simulator()
        trace = []

        def proc():
            yield 5.0
            trace.append("should not happen")

        process = sim.process(proc())
        sim.schedule(1.0, process.interrupt)
        sim.run()
        assert trace == []
        assert process.done

    def test_bad_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "not a valid target"

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_many_processes_interleave_deterministically(self):
        sim = Simulator()
        trace = []

        def proc(name, period):
            for _ in range(3):
                yield period
                trace.append((sim.now, name))

        sim.process(proc("a", 1.0))
        sim.process(proc("b", 1.5))
        sim.run()
        # at t=3.0 both fire; "b" scheduled its event first (at t=1.5,
        # before "a" rescheduled at t=2.0), so it runs first.
        assert trace == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"),
                         (3.0, "a"), (4.5, "b")]
