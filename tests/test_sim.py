"""Tests for the discrete-event simulation core."""

import pytest

from repro.sim import Process, Signal, SimulationError, Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callback_runs_at_scheduled_time(self):
        sim = Simulator()
        times = []
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.5]

    def test_callbacks_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_run_in_schedule_order(self):
        sim = Simulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == list("abcde")

    def test_args_are_passed(self):
        sim = Simulator()
        result = []
        sim.schedule(0.0, lambda a, b: result.append(a + b), 2, 3)
        sim.run()
        assert result == [5]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        times = []
        sim.schedule_at(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0]

    def test_nested_scheduling_from_callback(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(1.0, second)

        def second():
            times.append(sim.now)

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 2.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, True)
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.run() == 0

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        event.cancel()
        assert sim.pending == 1


class TestRunControl:
    def test_run_until_stops_the_clock_there(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run(until=2.0)
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_run_until_then_resume(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.run(until=2.0)
        assert times == []
        sim.run()
        assert times == [5.0]

    def test_run_advances_to_until_with_empty_heap(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events(self):
        sim = Simulator()
        count = []
        for _ in range(10):
            sim.schedule(1.0, count.append, 1)
        executed = sim.run(max_events=3)
        assert executed == 3
        assert len(count) == 3

    def test_step(self):
        sim = Simulator()
        out = []
        sim.schedule(1.0, out.append, "x")
        assert sim.step() is True
        assert out == ["x"]
        assert sim.step() is False

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() is None
        event = sim.schedule(3.0, lambda: None)
        assert sim.peek() == 3.0
        event.cancel()
        assert sim.peek() is None

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(0.0, reenter)
        sim.run()
        assert len(errors) == 1

    def test_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(0.5, lambda: None)
        sim.run()
        assert sim.processed == 4


class TestProcess:
    def test_yield_number_sleeps(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield 2.0
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0.0, 2.0]

    def test_yield_none_resumes_immediately(self):
        sim = Simulator()
        trace = []

        def proc():
            yield None
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0.0]

    def test_return_value_recorded(self):
        sim = Simulator()

        def proc():
            yield 1.0
            return 42

        process = sim.process(proc())
        sim.run()
        assert process.done
        assert process.result == 42

    def test_wait_on_signal(self):
        sim = Simulator()
        signal = sim.signal()
        got = []

        def proc():
            value = yield signal
            got.append((sim.now, value))

        sim.process(proc())
        sim.schedule(3.0, signal.fire, "hello")
        sim.run()
        assert got == [(3.0, "hello")]

    def test_signal_fire_is_idempotent(self):
        sim = Simulator()
        signal = sim.signal()
        signal.fire("first")
        signal.fire("second")
        assert signal.value == "first"

    def test_wait_on_already_fired_signal(self):
        sim = Simulator()
        signal = sim.signal()
        signal.fire("early")
        got = []

        def proc():
            value = yield signal
            got.append(value)

        sim.process(proc())
        sim.run()
        assert got == ["early"]

    def test_wait_on_other_process(self):
        sim = Simulator()
        trace = []

        def worker():
            yield 2.0
            return "done"

        def waiter(target):
            result = yield target
            trace.append((sim.now, result))

        target = sim.process(worker())
        sim.process(waiter(target))
        sim.run()
        assert trace == [(2.0, "done")]

    def test_interrupt_stops_process(self):
        sim = Simulator()
        trace = []

        def proc():
            yield 5.0
            trace.append("should not happen")

        process = sim.process(proc())
        sim.schedule(1.0, process.interrupt)
        sim.run()
        assert trace == []
        assert process.done

    def test_bad_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "not a valid target"

        sim.process(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_many_processes_interleave_deterministically(self):
        sim = Simulator()
        trace = []

        def proc(name, period):
            for _ in range(3):
                yield period
                trace.append((sim.now, name))

        sim.process(proc("a", 1.0))
        sim.process(proc("b", 1.5))
        sim.run()
        # at t=3.0 both fire; "b" scheduled its event first (at t=1.5,
        # before "a" rescheduled at t=2.0), so it runs first.
        assert trace == [(1.0, "a"), (1.5, "b"), (2.0, "a"), (3.0, "b"),
                         (3.0, "a"), (4.5, "b")]


class TestOrderingUnderLoad:
    """Ordering guarantees the batching refactor must preserve."""

    def test_same_timestamp_fifo_under_load(self):
        """Hundreds of events at one timestamp, interleaved with other
        times: ties always break by schedule order (seq)."""
        sim = Simulator()
        fired = []
        for index in range(300):
            # schedule out of time order on purpose
            at = 1.0 if index % 3 else 2.0
            sim.schedule(at, fired.append, (at, index))
        sim.run()
        at_1 = [i for (at, i) in fired if at == 1.0]
        at_2 = [i for (at, i) in fired if at == 2.0]
        assert at_1 == sorted(at_1)
        assert at_2 == sorted(at_2)
        assert fired == [item for item in fired if item[0] == 1.0] + \
            [item for item in fired if item[0] == 2.0]

    def test_signal_fire_wakes_waiters_in_wait_order(self):
        sim = Simulator()
        signal = Signal(sim)
        woken = []

        def waiter(name):
            yield signal
            woken.append(name)

        for name in ("a", "b", "c", "d"):
            sim.process(waiter(name), name=name)
        sim.run()  # all parked on the signal
        assert woken == []
        signal.fire("go")
        sim.run()
        assert woken == ["a", "b", "c", "d"]

    def test_accounting_reconciles_with_profiler_entries(self):
        """Dispatch-accounting totals and the profiler watch the same
        stream: counts match exactly, times within tolerance."""
        from repro.telemetry import Profiler
        sim = Simulator()
        sim.profiler = Profiler().enable()
        sim.accounting.enable()

        def tick():
            if sim.now < 0.2:
                sim.schedule(0.001, tick)
        sim.schedule(0.0, tick)
        sim.run()
        dispatch = sim.profiler.region("sim.event.dispatch")
        assert dispatch.calls == sim.accounting.dispatched
        assert dispatch.calls == sim.profiler.entries
        # whole-callback self-times track the inclusive dispatch time
        assert sim.accounting.self_seconds >= dispatch.self_time * 0.5
        stats = sim.accounting.kind_stats()
        assert sum(stat.count for stat in stats) == dispatch.calls


class TestDispatchAccounting:
    def test_off_by_default_and_records_nothing(self):
        sim = Simulator()
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert not sim.accounting.enabled
        assert sim.accounting.dispatched == 0
        assert sim.accounting.kinds == {}

    def test_kind_classification(self):
        from functools import partial
        from repro.sim import classify_callback

        class Owner:
            def method(self):
                pass
        owner = Owner()
        kind = classify_callback(owner.method)
        assert kind.endswith("Owner.method")
        assert not kind.startswith("repro.")
        assert classify_callback(partial(owner.method)) == kind

    def test_per_kind_counts_and_coalescability(self):
        sim = Simulator()
        sim.accounting.enable()
        fired = []
        for _ in range(5):
            sim.schedule(1.0, fired.append, "x")  # one shared timestamp
        sim.schedule(2.0, fired.append, "y")
        sim.run()
        acct = sim.accounting
        assert acct.dispatched == 6
        # 4 of the 5 t=1.0 events share a timestamp with a predecessor
        assert acct.coalescable == 4
        assert acct.coalescable_ratio == pytest.approx(4 / 6)
        report = acct.report()
        assert report["dispatched"] == 6
        assert report["coalescable"] == 4
        (kind, entry), = report["kinds"].items()
        assert kind == "list.append"
        assert entry["count"] == 6
        assert entry["share"] == pytest.approx(1.0)

    def test_cancel_heavy_workload_counts_churn(self):
        """Cancelled events popped by the loop are counted, not
        silently skipped — and that works with accounting off too."""
        sim = Simulator()
        fired = []
        keep = []
        for index in range(200):
            event = sim.schedule(1.0 + index * 0.001, fired.append, index)
            if index % 2:
                event.cancel()
            else:
                keep.append(index)
        sim.run()
        assert fired == keep
        assert sim.accounting.cancelled_popped == 100

    def test_step_and_peek_count_cancelled_churn(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek() == 2.0  # peek discards the cancelled head
        assert sim.accounting.cancelled_popped == 1
        assert sim.step() is True
        assert sim.step() is False

    def test_nested_step_pumping_subtracts_self_time(self):
        """A callback that pumps step() is charged only its own time;
        the inner event keeps its share (no double counting)."""
        sim = Simulator()
        sim.accounting.enable()

        def inner():
            pass

        def outer():
            sim.schedule(0.0, inner)
            sim.step()
        sim.schedule(1.0, outer)
        sim.run()
        acct = sim.accounting
        assert acct.dispatched == 2
        total = sum(s.self_seconds for s in acct.kind_stats())
        assert total == pytest.approx(acct.self_seconds)
        # the nested dispatch ran with the clock already at t=1.0
        assert acct.late == 0

    def test_nested_pumping_never_dispatches_late(self):
        """Nested step() pops in time order and only advances the
        clock, so scheduling lag stays zero — the lag histogram is the
        tripwire for a future batch dispatcher that would run events
        at a clock already past their timestamp."""
        sim = Simulator()
        sim.accounting.enable()

        def outer():
            # pump both pending events from inside a callback
            sim.step()
            sim.step()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        straggler_done = []
        sim.schedule(0.5, outer)
        sim.schedule(3.0, straggler_done.append, True)
        sim.run()
        acct = sim.accounting
        assert acct.late == 0
        assert acct.lag_max == 0.0
        assert acct.report()["lag"]["p99_s"] is None
        assert straggler_done == [True]

    def test_heap_depth_gauges(self):
        sim = Simulator()
        sim.accounting.enable()
        for index in range(10):
            sim.schedule(float(index), lambda: None)
        assert sim.heap_depth == 10
        assert sim.scheduled == 10
        sim.run()
        assert sim.heap_depth == 0
        assert sim.accounting.max_heap_depth == 10

    def test_reset_keeps_enabled_state(self):
        sim = Simulator()
        sim.accounting.enable()
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert sim.accounting.dispatched == 1
        sim.accounting.reset()
        assert sim.accounting.enabled
        assert sim.accounting.dispatched == 0
        assert sim.accounting.kinds == {}

    def test_event_repr_names_the_kind(self):
        sim = Simulator()
        event = sim.schedule(1.5, sorted, [3, 1])
        text = repr(event)
        assert "sorted" in text
        assert "pending" in text
        event.cancel()
        assert "cancelled" in repr(event)

    def test_render_top_lists_hottest_kind_first(self):
        sim = Simulator()
        sim.accounting.enable()

        def busy():
            sum(range(2000))

        def idle():
            pass
        for index in range(20):
            sim.schedule(float(index), busy)
        sim.schedule(30.0, idle)
        sim.run()
        text = sim.accounting.render_top()
        lines = text.splitlines()
        assert "event kind" in lines[0]
        assert "busy" in lines[1]
        assert "coalescable" in lines[-1]
