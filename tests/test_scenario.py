"""Tests for the scenario engine: spec parsing, workload determinism
(the bit-identical-schedule contract), the campaign runner's result
bundles, the cross-seed analyzer, and the ``escape scenario`` CLI.

The determinism test is the acceptance criterion for the whole
subsystem: two schedules built from the same (scenario, seed) must
serialize to byte-identical JSON, because every published campaign
number rests on re-runnable workloads.
"""

import json
import os

import pytest

from repro.scenario import (CampaignRunner, Scenario, load_bundles,
                            load_scenario, render_report, run_scenario)
from repro.scenario.analyzer import AnalyzerError, report_dict
from repro.scenario.spec import SpecError, parse_simple_yaml
from repro.scenario.workload import (CHAIN_TEMPLATES, Workload,
                                     WorkloadError, build_workload,
                                     diurnal_factor)
from repro.scenario.zoo import FatTreeTopo, build_topology
from repro.cli import main as cli_main

SMOKE_SCENARIO = {
    "name": "smoke",
    "duration": 2.0,
    "seeds": [1],
    "topology": {"kind": "fat_tree", "k": 2, "containers_per_pod": 1,
                 "container_ports": 4},
    "chains": {"count": 1, "templates": ["bump"]},
    "workload": {"subscribers_per_sap": 50, "flows_per_subscriber": 0.05,
                 "flow_rate_pps": 100, "flow_duration": 0.2,
                 "max_flows": 8},
    "sla": {"max_delay": 0.1},
}


class TestSpecParsing:
    YAML = """\
# a comment
name: parse-check
duration: 3.5
seeds: [1, 2, 3]
topology:
  kind: fat_tree
  k: 2
chains:
  count: 2
  templates: [web, bump]
workload:
  diurnal: {period: 3.5, trough: 0.4}
chaos:
  faults:
    - {kind: vnf_crash, at: 1.0}
    - kind: link_down
      at: 2.0
      duration: 0.5
"""

    def test_mini_yaml_parser(self):
        data = parse_simple_yaml(self.YAML)
        assert data["name"] == "parse-check"
        assert data["duration"] == 3.5
        assert data["seeds"] == [1, 2, 3]
        assert data["topology"] == {"kind": "fat_tree", "k": 2}
        assert data["chains"]["templates"] == ["web", "bump"]
        assert data["workload"]["diurnal"] == {"period": 3.5,
                                               "trough": 0.4}
        assert data["chaos"]["faults"] == [
            {"kind": "vnf_crash", "at": 1.0},
            {"kind": "link_down", "at": 2.0, "duration": 0.5}]

    def test_mini_yaml_matches_pyyaml_when_available(self):
        yaml = pytest.importorskip("yaml")
        assert parse_simple_yaml(self.YAML) == yaml.safe_load(self.YAML)

    def test_mini_yaml_rejects_tabs(self):
        with pytest.raises(SpecError, match="tabs"):
            parse_simple_yaml("a:\n\tb: 1")

    def test_load_scenario_from_dict_string_and_file(self, tmp_path):
        from_dict = load_scenario(dict(SMOKE_SCENARIO))
        from_string = load_scenario(self.YAML)
        path = tmp_path / "scen.yaml"
        path.write_text(self.YAML)
        from_file = load_scenario(str(path))
        assert from_dict.name == "smoke"
        assert from_string.name == from_file.name == "parse-check"
        assert from_file.seeds == [1, 2, 3]

    def test_missing_file(self):
        with pytest.raises(SpecError, match="no such scenario file"):
            load_scenario("does/not/exist.yaml")

    def test_unknown_key_rejected(self):
        bad = dict(SMOKE_SCENARIO, typo_key=1)
        with pytest.raises(SpecError, match="typo_key"):
            load_scenario(bad)

    def test_validation(self):
        with pytest.raises(SpecError, match="name"):
            Scenario(name="", topology={"kind": "wan"})
        with pytest.raises(SpecError, match="duration"):
            Scenario(name="x", topology={"kind": "wan"}, duration=0)
        with pytest.raises(SpecError, match="topology"):
            Scenario(name="x", topology={})

    def test_round_trip(self):
        scenario = load_scenario(dict(SMOKE_SCENARIO))
        again = Scenario.from_dict(scenario.to_dict())
        assert again.to_dict() == scenario.to_dict()

    def test_reference_scenarios_load(self):
        root = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples", "scenarios")
        names = [name for name in sorted(os.listdir(root))
                 if name.endswith((".yaml", ".yml"))]
        assert len(names) >= 2
        for name in names:
            scenario = load_scenario(os.path.join(root, name))
            assert scenario.seeds
            assert scenario.topology["kind"]


class TestWorkload:
    def test_diurnal_factor_bounds(self):
        for t in (0.0, 1.3, 2.5, 7.9):
            factor = diurnal_factor(t, period=10.0, trough=0.3)
            assert 0.3 <= factor <= 1.0
        assert diurnal_factor(5.0, 10.0, 0.3) == pytest.approx(1.0)
        assert diurnal_factor(0.0, 10.0, 0.3) == pytest.approx(0.3)

    def test_unknown_workload_key(self):
        with pytest.raises(WorkloadError, match="flows_per_sec"):
            Workload.from_dict({"flows_per_sec": 1})

    def test_unknown_template(self):
        topo = FatTreeTopo(k=2)
        with pytest.raises(WorkloadError, match="unknown chain template"):
            build_workload(topo, 1, 2.0,
                           chains_spec={"count": 1,
                                        "templates": ["nat64"]})

    def test_schedule_deterministic_bit_identical(self):
        """THE acceptance criterion: same seed -> byte-identical
        schedule JSON."""
        spec = SMOKE_SCENARIO
        one = build_workload(build_topology(spec["topology"]), 1,
                             spec["duration"],
                             workload_spec=spec["workload"],
                             chains_spec=spec["chains"],
                             sla_spec=spec["sla"])
        two = build_workload(build_topology(spec["topology"]), 1,
                             spec["duration"],
                             workload_spec=spec["workload"],
                             chains_spec=spec["chains"],
                             sla_spec=spec["sla"])
        assert json.dumps(one.to_dict(), sort_keys=True) == \
            json.dumps(two.to_dict(), sort_keys=True)

    def test_different_seeds_differ(self):
        spec = SMOKE_SCENARIO
        topo = build_topology(spec["topology"])
        schedules = [build_workload(topo, seed, 4.0,
                                    workload_spec=spec["workload"],
                                    chains_spec=spec["chains"])
                     for seed in (1, 2)]
        assert schedules[0].to_dict() != schedules[1].to_dict()

    def test_sap_pairs_never_reused(self):
        topo = FatTreeTopo(k=4)
        schedule = build_workload(topo, 3, 1.0,
                                  chains_spec={"count": 6})
        pairs = [frozenset((chain["src"], chain["dst"]))
                 for chain in schedule.chains]
        assert len(pairs) == len(set(pairs)) == 6

    def test_chain_requests_carry_sla(self):
        topo = FatTreeTopo(k=2)
        schedule = build_workload(topo, 1, 1.0,
                                  chains_spec={"count": 1,
                                               "templates": ["secure"]},
                                  sla_spec={"max_delay": 0.05})
        sg = schedule.chains[0]["sg"]
        assert [vnf["type"] for vnf in sg["vnfs"]] == ["firewall", "dpi"]
        assert sg["requirements"][0]["max_delay"] == 0.05
        assert sg["requirements"][0]["from"] == schedule.chains[0]["src"]

    def test_templates_cycle_round_robin(self):
        topo = FatTreeTopo(k=4)
        schedule = build_workload(
            topo, 1, 1.0,
            chains_spec={"count": 4, "templates": ["web", "bump"]})
        assert [chain["template"] for chain in schedule.chains] == \
            ["web", "bump", "web", "bump"]

    def test_too_many_chains_for_hosts(self):
        topo = FatTreeTopo(k=2)  # 2 hosts -> 1 distinct pair
        with pytest.raises(WorkloadError, match="cannot place"):
            build_workload(topo, 1, 1.0, chains_spec={"count": 2})

    def test_flows_sorted_and_capped(self):
        spec = dict(SMOKE_SCENARIO["workload"], max_flows=3)
        schedule = build_workload(build_topology(SMOKE_SCENARIO["topology"]),
                                  1, 5.0, workload_spec=spec,
                                  chains_spec=SMOKE_SCENARIO["chains"])
        starts = [flow["start"] for flow in schedule.flows]
        assert starts == sorted(starts)
        assert len(schedule.flows) <= 3

    def test_template_catalog_shape(self):
        for name, stages in CHAIN_TEMPLATES.items():
            assert stages, name
            for vnf_type, params in stages:
                assert isinstance(vnf_type, str)
                assert isinstance(params, dict)


class TestCampaignRunner:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        results = tmp_path_factory.mktemp("results")
        runner = CampaignRunner(dict(SMOKE_SCENARIO),
                                results_dir=str(results))
        runner.run()
        return runner

    def test_bundle_written(self, campaign):
        run_dir = campaign.run_dir(1)
        assert os.path.isfile(os.path.join(run_dir, "bundle.json"))
        assert os.path.isfile(os.path.join(run_dir, "events.jsonl"))

    def test_bundle_contents(self, campaign):
        bundle = campaign.bundles[0]
        assert bundle["schema"] == 4
        assert bundle["seed"] == 1
        assert bundle["scenario"]["name"] == "smoke"
        workload = bundle["workload"]
        assert workload["packets_sent"] > 0
        assert workload["packets_received"] == workload["packets_sent"]
        assert workload["delay_p50"] is not None
        assert workload["delay_p50"] <= workload["delay_p99"]
        assert bundle["chains"]["deployed"][0]["name"].startswith("chain1")
        assert bundle["chains"]["failed"] == []
        assert bundle["sla"]["monitored_chains"] == 1
        assert bundle["recovery"]["unrecovered"] == []
        assert bundle["recovery"]["mttr_p50"] is None  # no faults ran
        assert bundle["protection"] == {
            "enabled": False, "protected_paths": 0, "flips": 0}
        assert bundle["throughput"]["udp_pps_wall"] > 0

    def test_bundle_carries_dispatch_accounting(self, campaign):
        """Schema 2: accounting defaults on, the dispatch section is
        non-empty and internally consistent (the CI smoke criterion)."""
        bundle = campaign.bundles[0]
        assert bundle["calibration_s"] > 0
        dispatch = bundle["dispatch"]
        assert dispatch["dispatched"] > 0
        assert dispatch["kinds"]
        assert sum(entry["count"] for entry in
                   dispatch["kinds"].values()) == dispatch["dispatched"]
        assert any(kind.startswith("netem.link.")
                   for kind in dispatch["kinds"])
        assert 0.0 <= dispatch["coalescable_ratio"] <= 1.0

    def test_accounting_false_omits_dispatch_section(self):
        spec = dict(SMOKE_SCENARIO, accounting=False, duration=1.0)
        bundles = run_scenario(spec, write=False)
        assert "dispatch" not in bundles[0]

    def test_gate_passes(self, campaign):
        assert campaign.gate() == []

    def test_events_log_has_lines(self, campaign):
        events_path = campaign.bundles[0]["events"]["path"]
        with open(events_path) as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert lines
        assert campaign.bundles[0]["events"]["count"] == len(lines)

    def test_gate_flags_all_packets_lost(self):
        runner = CampaignRunner(dict(SMOKE_SCENARIO))
        runner.bundles = [{
            "seed": 9,
            "chains": {"failed": [], "deployed": []},
            "recovery": {"unrecovered": []},
            "workload": {"packets_sent": 10, "packets_received": 0},
        }]
        assert any("all workload packets lost" in problem
                   for problem in runner.gate())

    def test_run_scenario_without_write(self):
        bundles = run_scenario(dict(SMOKE_SCENARIO), write=False)
        assert len(bundles) == 1
        assert "events" not in bundles[0]


class TestAnalyzerAndCli:
    @pytest.fixture(scope="class")
    def results_dir(self, tmp_path_factory):
        results = tmp_path_factory.mktemp("cli-results")
        spec = tmp_path_factory.mktemp("spec") / "smoke.json"
        spec.write_text(json.dumps(SMOKE_SCENARIO))
        code = cli_main(["scenario", "run", str(spec), "--seed", "1",
                         "--seed", "2", "--results-dir", str(results),
                         "--quiet"])
        assert code == 0
        return str(results)

    def test_two_bundles_on_disk(self, results_dir):
        bundles = load_bundles(results_dir)
        assert [bundle["seed"] for bundle in bundles] == [1, 2]

    def test_render_report_table(self, results_dir):
        text = render_report(load_bundles(results_dir))
        assert "campaign smoke (2 run(s))" in text
        lines = text.splitlines()
        assert any(line.strip().startswith("1 ") for line in lines)
        assert any(line.strip().startswith("mean") for line in lines)

    def test_report_dict_aggregate(self, results_dir):
        data = report_dict(load_bundles(results_dir))
        campaign = data["campaigns"][0]
        assert campaign["scenario"] == "smoke"
        assert len(campaign["rows"]) == 2
        aggregate = campaign["aggregate"]
        assert aggregate["seeds"] == [1, 2]
        assert aggregate["unrecovered_total"] == 0
        assert aggregate["pps_sim"] > 0

    def test_cli_report_json(self, results_dir, capsys):
        assert cli_main(["scenario", "report", results_dir,
                         "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["campaigns"][0]["scenario"] == "smoke"

    def test_cli_report_table(self, results_dir, capsys):
        assert cli_main(["scenario", "report", results_dir]) == 0
        out = capsys.readouterr().out
        assert "campaign smoke" in out
        assert "coalesce" in out

    def test_cli_report_format_csv(self, results_dir, capsys):
        assert cli_main(["scenario", "report", results_dir,
                         "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        header = lines[0].split(",")
        assert header[:2] == ["scenario", "seed"]
        assert "events" in header and "coalesce_ratio" in header
        assert len(lines) == 3  # header + one row per seed
        assert lines[1].startswith("smoke,1,")
        assert lines[2].startswith("smoke,2,")

    def test_cli_report_format_json_matches_json_flag(self, results_dir,
                                                      capsys):
        assert cli_main(["scenario", "report", results_dir,
                         "--format", "json"]) == 0
        from_format = capsys.readouterr().out
        assert cli_main(["scenario", "report", results_dir,
                         "--json"]) == 0
        assert capsys.readouterr().out == from_format

    def test_cli_perf_report_from_bundle(self, results_dir, capsys):
        bundles = load_bundles(results_dir)
        path = bundles[0]["_path"]
        assert cli_main(["perf", "report", path]) == 0
        out = capsys.readouterr().out
        assert "dispatch accounting" in out
        assert "coalescable" in out

    def test_cli_perf_diff_same_seed_near_zero(self, results_dir,
                                               capsys):
        """Acceptance criterion: two same-seed runs diff near zero —
        here literally the same bundle against itself, plus the gate
        passing across the two seeds of one campaign."""
        bundles = load_bundles(results_dir)
        path = bundles[0]["_path"]
        assert cli_main(["perf", "diff", path, path, "--json"]) == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["max_abs_delta"] == 0.0
        assert diff["findings"] == []

    def test_cli_perf_diff_gate_failure_exit_code(self, results_dir,
                                                  tmp_path, capsys):
        bundles = load_bundles(results_dir)
        path = bundles[0]["_path"]
        with open(path) as handle:
            worse = json.load(handle)
        worse["throughput"]["udp_pps_wall"] *= 0.5
        worse_path = tmp_path / "worse.json"
        worse_path.write_text(json.dumps(worse))
        assert cli_main(["perf", "diff", path, str(worse_path)]) == 1
        capsys.readouterr()
        assert cli_main(["perf", "diff", path, str(worse_path),
                         "--no-gate"]) == 0
        capsys.readouterr()

    def test_cli_perf_report_bad_source(self, capsys):
        assert cli_main(["perf", "report", "not/a/real/path"]) == 2
        assert "no such perf source" in capsys.readouterr().err

    def test_cli_report_missing_path(self, capsys):
        assert cli_main(["scenario", "report",
                         "definitely/not/there"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_cli_list(self, capsys):
        assert cli_main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "topology kinds:" in out
        assert "fat_tree" in out and "wan" in out and "waxman" in out
        assert "chain templates:" in out

    def test_load_bundles_rejects_empty_dir(self, tmp_path):
        with pytest.raises(AnalyzerError, match="no bundle.json"):
            load_bundles(str(tmp_path))
