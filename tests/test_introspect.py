"""repro.telemetry.introspect — attribution reports and perf diffing."""

import json

import pytest

from repro.sim import Simulator
from repro.telemetry import Profiler
from repro.telemetry.introspect import (IntrospectError, build_report,
                                        coerce_report, diff_reports,
                                        load_report, render_diff,
                                        render_report)


def _measured_sim():
    """A tiny run watched by both layers; returns (profiler, sim)."""
    sim = Simulator()
    profiler = Profiler().enable()
    sim.profiler = profiler
    sim.accounting.enable()

    def tick():
        # enough per-callback work that measurement bookkeeping is
        # noise next to it, as in a real dataplane event
        sum(index * 3 % 7 for index in range(3000))
        if sim.now < 0.05:
            sim.schedule(0.001, tick)
    sim.schedule(0.0, tick)
    sim.run()
    profiler.disable()
    sim.accounting.disable()
    return profiler, sim


class TestBuildReport:
    def test_merges_all_three_sources(self):
        profiler, sim = _measured_sim()
        report = build_report(profiler, sim.accounting,
                              throughput={"udp_pps_wall": 100.0},
                              calibration=1e-6, meta={"note": "t"})
        assert report["kind"] == "attribution"
        assert report["calibration_s"] == 1e-6
        assert "sim.event.dispatch" in report["regions"]
        kinds = report["dispatch"]["kinds"]
        assert len(kinds) == 1
        entry = next(iter(kinds.values()))
        assert entry["count"] == report["dispatch"]["dispatched"]
        assert entry["score"] == pytest.approx(
            entry["per_call_s"] / 1e-6)
        assert report["throughput"] == {"udp_pps_wall": 100.0}
        assert report["meta"] == {"note": "t"}

    def test_coverage_reconciles_within_tolerance(self):
        profiler, sim = _measured_sim()
        report = build_report(profiler, sim.accounting)
        coverage = report["coverage"]
        assert coverage["ratio"] is not None
        assert abs(coverage["ratio"] - 1.0) <= coverage["tolerance"]

    def test_sources_may_be_absent(self):
        report = build_report()
        assert report["regions"] == {}
        assert report["dispatch"] == {}
        assert report["coverage"]["ratio"] is None
        assert render_report(report)  # still renders

    def test_accepts_prerendered_dispatch_dict(self):
        _profiler, sim = _measured_sim()
        kept = sim.accounting.report()
        report = build_report(accounting=kept, calibration=1e-6)
        assert report["dispatch"]["dispatched"] == kept["dispatched"]
        for entry in report["dispatch"]["kinds"].values():
            assert "score" in entry


class TestCoerceAndLoad:
    def test_coerce_detects_profile_snapshot(self):
        snapshot = {
            "regions": {"sim.event.dispatch":
                        {"calls": 10, "cum_s": 0.01, "self_s": 0.01,
                         "per_call_s": 0.001}},
            "throughput": {"udp_pps_wall": 50.0},
            "calibration_s": 0.001,
        }
        report = coerce_report(snapshot)
        assert report["kind"] == "attribution"
        region = report["regions"]["sim.event.dispatch"]
        assert region["score"] == pytest.approx(1.0)
        assert report["meta"]["source"] == "profile-snapshot"

    def test_coerce_detects_bundle(self):
        bundle = {
            "schema": 2, "seed": 7,
            "scenario": {"name": "demo"},
            "workload": {},
            "dispatch": {"dispatched": 4, "self_seconds": 0.004,
                         "kinds": {"netem.link.Link._deliver":
                                   {"count": 4, "self_s": 0.004,
                                    "per_call_s": 0.001}}},
            "throughput": {"udp_pps_wall": 10.0},
            "calibration_s": 0.001,
        }
        report = coerce_report(bundle)
        assert report["meta"]["scenario"] == "demo"
        assert report["meta"]["seed"] == 7
        kind = report["dispatch"]["kinds"]["netem.link.Link._deliver"]
        assert kind["score"] == pytest.approx(1.0)

    def test_coerce_rejects_unknown_shape(self):
        with pytest.raises(IntrospectError):
            coerce_report({"what": "ever"})
        with pytest.raises(IntrospectError):
            coerce_report([1, 2])

    def test_load_report_from_file_and_dir(self, tmp_path):
        profiler, sim = _measured_sim()
        report = build_report(profiler, sim.accounting,
                              calibration=1e-6)
        path = tmp_path / "attribution.json"
        path.write_text(json.dumps(report))
        loaded = load_report(path)
        assert loaded["dispatch"]["dispatched"] == \
            report["dispatch"]["dispatched"]
        # a results dir holding exactly one bundle.json
        run_dir = tmp_path / "results" / "seed-1"
        run_dir.mkdir(parents=True)
        bundle = {"schema": 2, "seed": 1, "scenario": {"name": "x"},
                  "dispatch": report["dispatch"], "throughput": {},
                  "calibration_s": 1e-6}
        (run_dir / "bundle.json").write_text(json.dumps(bundle))
        from_dir = load_report(tmp_path / "results")
        assert from_dir["meta"]["seed"] == 1

    def test_load_report_errors(self, tmp_path):
        with pytest.raises(IntrospectError):
            load_report(tmp_path / "missing.json")
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(IntrospectError):
            load_report(empty)
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(IntrospectError):
            load_report(bad)


class TestDiffReports:
    def _report(self):
        profiler, sim = _measured_sim()
        return build_report(profiler, sim.accounting,
                            throughput={"udp_pps_wall": 100.0},
                            calibration=1e-6)

    def test_diff_with_itself_is_exactly_zero(self):
        report = self._report()
        diff = diff_reports(report, report)
        assert diff["max_abs_delta"] == 0.0
        assert diff["findings"] == []
        assert diff["normalized"] is True
        for section in ("regions", "dispatch", "throughput"):
            for item in diff[section]:
                assert item["delta"] == 0.0

    def test_diff_normalizes_out_machine_speed(self):
        """The same per-call times on a 2x-slower machine (2x the
        calibration unit) halve every score; raw-time deltas would
        scream regression, normalized ones cancel."""
        report = self._report()
        slower = json.loads(json.dumps(report))
        slower["calibration_s"] = report["calibration_s"] * 2
        for entry in slower["regions"].values():
            entry["per_call_s"] *= 2
            entry["score"] = (entry["per_call_s"]
                              / slower["calibration_s"])
        for entry in slower["dispatch"]["kinds"].values():
            entry["per_call_s"] *= 2
            entry["score"] = (entry["per_call_s"]
                              / slower["calibration_s"])
        diff = diff_reports(report, slower)
        for item in diff["regions"] + diff["dispatch"]:
            assert item["delta"] == pytest.approx(0.0)

    def test_regression_beyond_threshold_is_a_finding(self):
        report = self._report()
        worse = json.loads(json.dumps(report))
        region = worse["regions"]["sim.event.dispatch"]
        region["score"] *= 1.5
        region["per_call_s"] *= 1.5
        diff = diff_reports(report, worse, threshold=0.15)
        assert diff["findings"]
        assert any(finding["name"] == "sim.event.dispatch"
                   for finding in diff["findings"])
        assert "FAIL" in render_diff(diff)

    def test_throughput_drop_is_a_finding(self):
        report = self._report()
        worse = json.loads(json.dumps(report))
        worse["throughput"]["udp_pps_wall"] = 50.0
        diff = diff_reports(report, worse)
        assert any(finding["name"] == "udp_pps_wall"
                   for finding in diff["findings"])

    def test_render_diff_mentions_gate_state(self):
        report = self._report()
        text = render_diff(diff_reports(report, report))
        assert "PASS" in text


class TestRendering:
    def test_render_report_tables(self):
        profiler, sim = _measured_sim()
        report = build_report(profiler, sim.accounting,
                              throughput={"udp_pps_wall": 42.0},
                              calibration=1e-6)
        text = render_report(report)
        assert "dispatch accounting" in text
        assert "profiler regions" in text
        assert "coverage" in text
        assert "udp_pps_wall" in text
