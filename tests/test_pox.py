"""Tests for the POX-analog controller platform."""

import pytest

from repro.netem import Network
from repro.openflow import Match, Output
from repro.pox import (ConnectionUp, Core, Discovery, L2LearningSwitch,
                       LinkEvent, OpenFlowNexus, PacketInEvent, PathHop,
                       SteeringError, TrafficSteering)
from repro.pox.events import Event, EventMixin
from repro.sim import Simulator


class TestEventMixin:
    class Ping(Event):
        pass

    class Pong(Event):
        pass

    def test_listener_receives_event(self):
        bus = EventMixin()
        got = []
        bus.add_listener(self.Ping, got.append)
        bus.raise_event(self.Ping())
        assert len(got) == 1

    def test_listener_filtered_by_type(self):
        bus = EventMixin()
        got = []
        bus.add_listener(self.Ping, got.append)
        bus.raise_event(self.Pong())
        assert got == []

    def test_halt_stops_propagation(self):
        bus = EventMixin()
        order = []

        def first(event):
            order.append("first")
            event.halt = True

        bus.add_listener(self.Ping, first)
        bus.add_listener(self.Ping, lambda e: order.append("second"))
        bus.raise_event(self.Ping())
        assert order == ["first"]

    def test_remove_listener(self):
        bus = EventMixin()
        got = []
        callback = bus.add_listener(self.Ping, got.append)
        bus.remove_listener(self.Ping, callback)
        bus.raise_event(self.Ping())
        assert got == []

    def test_add_listeners_by_naming_convention(self):
        bus = EventMixin()

        class Component:
            def __init__(self):
                self.seen = []

            def _handle_Ping(self, event):
                self.seen.append(event)

        component = Component()
        bus.add_listeners(component)
        bus.raise_event(self.Ping())
        assert len(component.seen) == 1


class TestCore:
    def test_register_and_lookup(self):
        core = Core()
        core.register("thing", 42)
        assert core.component("thing") == 42
        assert core.thing == 42
        assert core.has_component("thing")

    def test_duplicate_rejected(self):
        core = Core()
        core.register("x", 1)
        with pytest.raises(ValueError):
            core.register("x", 2)

    def test_missing_attribute(self):
        with pytest.raises(AttributeError):
            Core().nothing_here


def build_controlled(topo_builder):
    """Create a network + nexus + learning switch + discovery."""
    net = Network()
    core = Core(net.sim)
    nexus = OpenFlowNexus(core)
    learning = L2LearningSwitch(nexus)
    discovery = Discovery(nexus)
    topo_builder(net)
    net.add_controller(nexus)
    net.start()
    return net, nexus, learning, discovery


def two_switch_topo(net):
    h1, h2 = net.add_host("h1"), net.add_host("h2")
    s1, s2 = net.add_switch("s1"), net.add_switch("s2")
    net.add_link(h1, s1, delay=0.001)
    net.add_link(s1, s2, delay=0.001)
    net.add_link(h2, s2, delay=0.001)


class TestNexus:
    def test_connections_registered_after_handshake(self):
        net, nexus, _l2, _disc = build_controlled(two_switch_topo)
        net.run(0.1)
        assert sorted(nexus.connections) == [1, 2]

    def test_connection_up_events(self):
        events = []
        net = Network()
        core = Core(net.sim)
        nexus = OpenFlowNexus(core)
        nexus.add_listener(ConnectionUp, events.append)
        net.add_switch("s1")
        net.add_controller(nexus)
        net.start()
        net.run(0.1)
        assert len(events) == 1
        assert events[0].dpid == 1

    def test_connection_ports_populated(self):
        net, nexus, _l2, _disc = build_controlled(two_switch_topo)
        net.run(0.1)
        connection = nexus.connection(1)
        assert len(connection.ports) == 2

    def test_send_by_dpid(self):
        net, nexus, _l2, _disc = build_controlled(two_switch_topo)
        net.run(0.1)
        from repro.openflow import FlowMod
        nexus.send(1, FlowMod(Match(), [Output(1)]))
        net.run(0.1)
        switch = net.get("s1")
        assert len(switch.datapath.table) == 1

    def test_unknown_dpid_raises(self):
        net, nexus, _l2, _disc = build_controlled(two_switch_topo)
        net.run(0.1)
        with pytest.raises(KeyError):
            nexus.connection(99)


class TestL2Learning:
    def test_hosts_reach_each_other(self):
        net, _nexus, _l2, _disc = build_controlled(two_switch_topo)
        net.run(0.2)
        h1, h2 = net.get("h1"), net.get("h2")
        result = h1.ping(h2.ip, count=2, interval=0.2)
        net.run(2.0)
        assert result.received == 2

    def test_flows_installed_after_learning(self):
        net, _nexus, learning, _disc = build_controlled(two_switch_topo)
        net.run(0.2)
        h1, h2 = net.get("h1"), net.get("h2")
        h1.ping(h2.ip, count=1)
        net.run(1.0)
        assert learning.flows_installed > 0
        assert learning.mac_table  # learned something

    def test_second_ping_faster_than_first(self):
        """First exchange pays packet-in RTTs; repeats hit the tables."""
        net, _nexus, _l2, _disc = build_controlled(two_switch_topo)
        net.run(0.2)
        h1, h2 = net.get("h1"), net.get("h2")
        result = h1.ping(h2.ip, count=3, interval=0.5)
        net.run(3.0)
        assert result.rtts[0] > result.rtts[-1]


class TestDiscovery:
    def test_inter_switch_link_found(self):
        net, _nexus, _l2, discovery = build_controlled(two_switch_topo)
        net.run(2.0)
        assert discovery.links() == {(1, 2, 2, 1)} \
            or discovery.links() == {(2, 1, 1, 2)}

    def test_peer_of(self):
        net, _nexus, _l2, discovery = build_controlled(two_switch_topo)
        net.run(2.0)
        peer = discovery.peer_of(1, 2)
        assert peer == (2, 1)

    def test_host_ports_not_links(self):
        net, _nexus, _l2, discovery = build_controlled(two_switch_topo)
        net.run(2.0)
        # only the single switch-switch adjacency (both directions)
        assert len(discovery.adjacency) == 2

    def test_link_timeout_after_cut(self):
        net, _nexus, _l2, discovery = build_controlled(two_switch_topo)
        net.run(2.0)
        assert discovery.adjacency
        for link in net.links:
            if link.intf1.node.name.startswith("s") \
                    and link.intf2.node.name.startswith("s"):
                link.set_up(False)
        net.run(10.0)
        assert not discovery.adjacency

    def test_link_events_raised(self):
        events = []
        net, _nexus, _l2, discovery = build_controlled(two_switch_topo)
        discovery.add_listener(LinkEvent, events.append)
        net.run(2.0)
        assert any(event.added for event in events)


class TestSteering:
    def _ready(self, mode="exact"):
        net = Network()
        core = Core(net.sim)
        nexus = OpenFlowNexus(core)
        steering = TrafficSteering(nexus, mode=mode)
        two_switch_topo(net)
        net.add_controller(nexus)
        net.start()
        net.run(0.1)
        return net, steering

    def test_exact_mode_one_flowmod_per_hop(self):
        net, steering = self._ready("exact")
        hops = [PathHop(1, 1, 2), PathHop(2, 1, 2)]
        steering.install_path("p1", hops, Match(nw_src="10.0.0.1"))
        assert steering.flow_mod_count("p1") == 2
        net.run(0.1)
        assert len(net.get("s1").datapath.table) == 1
        assert len(net.get("s2").datapath.table) == 1

    def test_vlan_mode_structure(self):
        net, steering = self._ready("vlan")
        hops = [PathHop(1, 1, 2), PathHop(2, 1, 2)]
        steering.install_path("p1", hops, Match(nw_src="10.0.0.1"))
        net.run(0.1)
        s1_entry = net.get("s1").datapath.table.entries[0]
        s2_entry = net.get("s2").datapath.table.entries[0]
        from repro.openflow import SetVlan, StripVlan
        assert any(isinstance(a, SetVlan) for a in s1_entry.actions)
        assert any(isinstance(a, StripVlan) for a in s2_entry.actions)
        assert s2_entry.match.dl_vlan is not None

    def test_vlan_tags_unique_per_path(self):
        net, steering = self._ready("vlan")
        steering.install_path("p1", [PathHop(1, 1, 2), PathHop(2, 1, 2)],
                              Match(nw_src="10.0.0.1"))
        steering.install_path("p2", [PathHop(1, 2, 1), PathHop(2, 2, 1)],
                              Match(nw_src="10.0.0.2"))
        vlans = {installed.vlan
                 for installed in steering.paths.values()}
        assert len(vlans) == 2

    def test_remove_path_clears_entries(self):
        net, steering = self._ready("exact")
        steering.install_path("p1", [PathHop(1, 1, 2)],
                              Match(nw_src="10.0.0.1"))
        net.run(0.1)
        assert len(net.get("s1").datapath.table) == 1
        steering.remove_path("p1")
        net.run(0.1)
        assert len(net.get("s1").datapath.table) == 0

    def test_duplicate_path_id_rejected(self):
        _net, steering = self._ready()
        steering.install_path("p1", [PathHop(1, 1, 2)], Match())
        with pytest.raises(SteeringError):
            steering.install_path("p1", [PathHop(1, 1, 2)], Match())

    def test_empty_hops_rejected(self):
        _net, steering = self._ready()
        with pytest.raises(SteeringError):
            steering.install_path("p1", [], Match())

    def test_unknown_switch_rejected(self):
        _net, steering = self._ready()
        with pytest.raises(SteeringError):
            steering.install_path("p1", [PathHop(77, 1, 2)], Match())

    def test_remove_unknown_rejected(self):
        _net, steering = self._ready()
        with pytest.raises(SteeringError):
            steering.remove_path("ghost")

    def test_vlan_released_on_removal(self):
        _net, steering = self._ready("vlan")
        steering.install_path("p1", [PathHop(1, 1, 2), PathHop(2, 1, 2)],
                              Match(nw_src="10.0.0.1"))
        first_vlan = steering.paths["p1"].vlan
        steering.remove_path("p1")
        steering.install_path("p2", [PathHop(1, 1, 2), PathHop(2, 1, 2)],
                              Match(nw_src="10.0.0.2"))
        assert steering.paths["p2"].vlan == first_vlan

    def test_steering_beats_learning_priority(self):
        from repro.pox.l2_learning import LEARNING_PRIORITY
        from repro.pox.steering import STEERING_PRIORITY
        assert STEERING_PRIORITY > LEARNING_PRIORITY

    def test_bad_mode_rejected(self):
        net = Network()
        nexus = OpenFlowNexus(Core(net.sim))
        with pytest.raises(SteeringError):
            TrafficSteering(nexus, mode="quantum")


class TestSteeringRestoration:
    def _ready(self):
        net = Network()
        core = Core(net.sim)
        nexus = OpenFlowNexus(core)
        steering = TrafficSteering(nexus, mode="exact")
        two_switch_topo(net)
        net.add_controller(nexus)
        net.start()
        net.run(0.1)
        return net, steering

    def test_flushed_entry_is_reinstalled(self):
        net, steering = self._ready()
        steering.install_path("p1", [PathHop(1, 1, 2)],
                              Match(nw_src="10.0.0.1"))
        net.run(0.1)
        switch = net.get("s1")
        assert len(switch.datapath.table) == 1
        # an operator flushes the table behind the controller's back
        switch.datapath.table.delete(Match(), now=net.sim.now)
        assert len(switch.datapath.table) == 0
        net.run(0.5)  # FlowRemoved reaches steering; it re-installs
        assert len(switch.datapath.table) == 1
        assert steering.restorations == 1

    def test_expired_entry_is_reinstalled(self):
        net = Network()
        core = Core(net.sim)
        nexus = OpenFlowNexus(core)
        steering = TrafficSteering(nexus, mode="exact",
                                   hard_timeout=0.5)
        two_switch_topo(net)
        net.add_controller(nexus)
        net.start()
        net.run(0.1)
        steering.install_path("p1", [PathHop(1, 1, 2)],
                              Match(nw_src="10.0.0.1"))
        net.run(3.0)  # several expiry+restore cycles
        assert steering.restorations >= 2
        assert len(net.get("s1").datapath.table) >= 1

    def test_removed_path_is_not_restored(self):
        net, steering = self._ready()
        steering.install_path("p1", [PathHop(1, 1, 2)],
                              Match(nw_src="10.0.0.1"))
        net.run(0.1)
        steering.remove_path("p1")
        net.run(0.5)
        assert len(net.get("s1").datapath.table) == 0
        assert steering.restorations == 0

    def test_restore_can_be_disabled(self):
        net = Network()
        core = Core(net.sim)
        nexus = OpenFlowNexus(core)
        steering = TrafficSteering(nexus, mode="exact", restore=False)
        two_switch_topo(net)
        net.add_controller(nexus)
        net.start()
        net.run(0.1)
        steering.install_path("p1", [PathHop(1, 1, 2)],
                              Match(nw_src="10.0.0.1"))
        net.run(0.1)
        switch = net.get("s1")
        switch.datapath.table.delete(Match(), now=net.sim.now)
        net.run(0.5)
        assert len(switch.datapath.table) == 0
