"""Tests for the in-band control network (dedicated management hub)."""

import pytest

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology
from repro.netconf.ethtransport import EthTransport
from repro.netem import Network
from repro.netem.hub import Hub

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 4, "mem": 2048},
        {"name": "nc2", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "h2", "to": "s1", "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc2", "to": "s1", "delay": 0.0005},
        {"from": "nc2", "to": "s1", "delay": 0.0005},
    ],
}

SG = {
    "name": "inband-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow icmp, drop all"}}],
    "chain": ["h1", "fw", "h2"],
}


class TestHub:
    def test_repeats_to_all_other_ports(self):
        net = Network()
        hub = net.add_hub("hub0")
        received = {}
        intfs = []
        for index in range(3):
            intf = hub.add_interface("00:00:00:00:10:%02x" % index)
            intfs.append(intf)
        # short-circuit: deliver directly into a hub port
        outs = {index: [] for index in range(3)}
        for index, intf in enumerate(intfs):
            intf.send = (lambda data, i=index: outs[i].append(data))
        hub._receive(intfs[0], b"frame")
        assert outs[0] == []
        assert outs[1] == [b"frame"]
        assert outs[2] == [b"frame"]


class TestEthTransport:
    def _pair(self):
        net = Network()
        hub = net.add_hub("hub0")
        from repro.netem.node import Node
        a = net.add_node(Node("a", net.sim))
        b = net.add_node(Node("b", net.sim))
        link_a = net.add_link(a, hub)
        link_b = net.add_link(b, hub)
        intf_a = link_a.intf1 if link_a.intf1.node is a else link_a.intf2
        intf_b = link_b.intf1 if link_b.intf1.node is b else link_b.intf2
        return (net, EthTransport(intf_a, intf_b.mac),
                EthTransport(intf_b, intf_a.mac))

    def test_bytes_flow_both_ways(self):
        net, ta, tb = self._pair()
        got_a, got_b = [], []
        ta.set_receiver(got_a.append)
        tb.set_receiver(got_b.append)
        ta.send(b"hello-b")
        tb.send(b"hello-a")
        net.run(1.0)
        assert got_b == [b"hello-b"]
        assert got_a == [b"hello-a"]

    def test_large_payload_chunked_and_reassembled_in_order(self):
        net, ta, tb = self._pair()
        got = []
        tb.set_receiver(got.append)
        blob = bytes(range(256)) * 20  # 5120 B > MTU
        ta.send(blob)
        net.run(1.0)
        assert b"".join(got) == blob
        assert len(got) > 1  # actually chunked

    def test_foreign_traffic_filtered(self):
        net, ta, tb = self._pair()
        got = []
        tb.set_receiver(got.append)
        # a frame from an unknown mac must be ignored
        from repro.packet import Ethernet
        from repro.netconf.ethtransport import ETHERTYPE_MGMT
        rogue = Ethernet(src="00:00:00:00:99:99", dst=tb.intf.mac,
                         type=ETHERTYPE_MGMT, payload=b"spoof")
        tb.intf.deliver(rogue.pack())
        net.run(0.1)
        assert got == []

    def test_closed_transport_silent(self):
        net, ta, tb = self._pair()
        got = []
        tb.set_receiver(got.append)
        ta.close()
        ta.send(b"late")
        net.run(0.5)
        assert got == []


class TestInbandEscape:
    @pytest.fixture
    def escape(self):
        framework = ESCAPE.from_topology(load_topology(TOPOLOGY),
                                         control_network="inband")
        framework.start()
        return framework

    def test_management_network_exists(self, escape):
        assert isinstance(escape.mgmt_hub, Hub)
        # 2 containers x (orchestrator leg + agent leg)
        assert len(escape.mgmt_hub.interfaces) == 4
        for container in escape.net.vnf_containers():
            assert container.mgmt_interface is not None

    def test_mgmt_interface_not_usable_for_vnfs(self, escape):
        for container in escape.net.vnf_containers():
            assert container.mgmt_interface.name \
                not in container.free_interfaces()

    def test_netconf_sessions_over_the_hub(self, escape):
        for client in escape.netconf_clients.values():
            assert client.connected
        # the hello exchange already crossed the hub
        assert escape.mgmt_hub.frames_repeated > 0

    def test_full_demo_over_inband_management(self, escape):
        chain = escape.deploy_service(SG)
        before = escape.mgmt_hub.frames_repeated
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        result = h1.ping(h2.ip, count=3, interval=0.2)
        escape.run(2.0)
        assert result.received == 3
        # a Clicky read travels the control network
        assert int(chain.read_handler("fw", "fw.passed")) >= 3
        assert escape.mgmt_hub.frames_repeated > before
        chain.undeploy()

    def test_mgmt_hub_not_in_resource_view(self, escape):
        view = escape.orchestrator.view
        assert "mgmt0" not in view.graph
        assert "orchestrator-mgmt" not in view.graph

    def test_data_plane_isolated_from_mgmt(self, escape):
        """Chain traffic never rides the hub; only NETCONF does."""
        escape.deploy_service(SG)
        baseline = escape.mgmt_hub.frames_repeated
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        h1.start_udp_flow(h2.ip, 9999, rate_pps=100, duration=1.0)
        escape.run(2.0)
        # the 100-packet flow added no management frames
        assert escape.mgmt_hub.frames_repeated == baseline

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            ESCAPE.from_topology(load_topology(TOPOLOGY),
                                 control_network="carrier-pigeon")
