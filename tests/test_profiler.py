"""Unit tests for repro.telemetry.profiler (scoped wall-clock regions)
and the perf-regression comparator built on its reports.

A fake monotonic clock makes attribution assertions exact: each clock
read advances by a scripted amount, so self/cumulative splits and
overhead accounting can be checked to the tick.
"""

import json
import os

import pytest

from repro.sim import Simulator
from repro.telemetry import (NULL_REGION, Profiler, Telemetry, current,
                             set_current)
from repro.telemetry.regression import (DEFAULT_GUARDED, SCHEMA_VERSION,
                                        calibrate, compare_profiles,
                                        load_profile, profile_snapshot,
                                        render_comparison, write_profile)


class FakeClock:
    """Monotonic clock advancing a fixed step per read."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value

    def advance(self, seconds):
        self.now += seconds


class TestProfilerCore:
    def test_disabled_profiler_hands_out_null_region(self):
        profiler = Profiler()
        assert not profiler.enabled
        region = profiler.profile("core.mapping.solve")
        assert region is NULL_REGION
        with region:
            pass
        assert profiler.stats == {}
        assert profiler.entries == 0

    def test_enable_disable_reset(self):
        profiler = Profiler()
        assert profiler.enable() is profiler
        assert profiler.enabled
        with profiler.profile("a.b"):
            pass
        assert profiler.entries == 1
        profiler.reset()
        assert profiler.entries == 0
        assert profiler.stats == {}
        assert profiler.enabled  # reset keeps the on/off state
        profiler.disable()
        assert not profiler.enabled

    def test_single_region_attribution(self):
        clock = FakeClock(step=0.0)
        profiler = Profiler(clock=clock).enable()
        with profiler.profile("netem.link.transmit"):
            clock.advance(2.0)
        stat = profiler.region("netem.link.transmit")
        assert stat.calls == 1
        assert stat.cum == pytest.approx(2.0)
        assert stat.self_time == pytest.approx(2.0)
        assert stat.per_call == pytest.approx(2.0)

    def test_nested_regions_split_self_and_cum(self):
        clock = FakeClock(step=0.0)
        profiler = Profiler(clock=clock).enable()
        with profiler.profile("outer"):
            clock.advance(1.0)
            with profiler.profile("inner"):
                clock.advance(3.0)
            clock.advance(1.0)
        outer = profiler.region("outer")
        inner = profiler.region("inner")
        assert inner.cum == pytest.approx(3.0)
        assert inner.self_time == pytest.approx(3.0)
        assert outer.cum == pytest.approx(5.0)  # includes the child
        assert outer.self_time == pytest.approx(2.0)  # child excluded
        assert profiler.total_self == pytest.approx(5.0)

    def test_repeated_entries_accumulate(self):
        clock = FakeClock(step=0.0)
        profiler = Profiler(clock=clock).enable()
        for _ in range(4):
            with profiler.profile("sim.event.dispatch"):
                clock.advance(0.5)
        stat = profiler.region("sim.event.dispatch")
        assert stat.calls == 4
        assert stat.cum == pytest.approx(2.0)
        assert stat.per_call == pytest.approx(0.5)
        assert profiler.entries == 4

    def test_collapsed_stacks_for_flamegraphs(self):
        clock = FakeClock(step=0.0)
        profiler = Profiler(clock=clock).enable()
        with profiler.profile("dispatch"):
            clock.advance(1.0)
            with profiler.profile("transmit"):
                clock.advance(2.0)
        with profiler.profile("dispatch"):
            clock.advance(0.5)
        lines = profiler.collapsed(unit=0.5)
        assert "dispatch 3" in lines  # (1.0 + 0.5) / 0.5
        assert "dispatch;transmit 4" in lines  # 2.0 / 0.5
        assert profiler.render_flame() == "\n".join(profiler.collapsed())

    def test_exception_still_closes_region(self):
        clock = FakeClock(step=0.0)
        profiler = Profiler(clock=clock).enable()
        with pytest.raises(ValueError):
            with profiler.profile("failing"):
                clock.advance(1.0)
                raise ValueError("boom")
        stat = profiler.region("failing")
        assert stat.calls == 1
        assert stat.cum == pytest.approx(1.0)
        assert profiler._stack == []

    def test_overhead_accounting(self):
        # every clock read costs one tick: 3 reads per region (enter
        # bookkeeping runs before the start stamp, so it costs no extra
        # read), and the measured span must exclude the exit bookkeeping
        clock = FakeClock(step=1.0)
        profiler = Profiler(clock=clock).enable()
        with profiler.profile("a.b"):
            pass
        stat = profiler.region("a.b")
        # start is read at tick 1, end at tick 2 -> span exactly 1 tick
        assert stat.cum == pytest.approx(1.0)
        # exit bookkeeping charged 1 tick (end->done)
        assert profiler.overhead == pytest.approx(1.0)

    def test_disable_clears_live_stack(self):
        profiler = Profiler().enable()
        region = profiler.profile("stuck")
        region.__enter__()
        assert profiler._stack
        profiler.disable()
        assert profiler._stack == []

    def test_report_and_render_top(self):
        clock = FakeClock(step=0.0)
        profiler = Profiler(clock=clock).enable()
        with profiler.profile("hot"):
            clock.advance(3.0)
        with profiler.profile("cold"):
            clock.advance(1.0)
        report = profiler.report()
        assert set(report) == {"hot", "cold"}
        assert report["hot"]["self_s"] == pytest.approx(3.0)
        assert report["hot"]["calls"] == 1
        text = profiler.render_top(limit=1)
        assert "hot" in text and "cold" not in text
        # hottest-first ordering and limit=0 meaning "all"
        full = profiler.render_top(limit=0)
        assert full.index("hot") < full.index("cold")
        names = [stat.name for stat in profiler.regions()]
        assert names == ["hot", "cold"]


class TestModuleLevelProfile:
    def test_uses_current_bundle(self):
        from repro.telemetry import profile
        original = current()
        try:
            bundle = set_current(Telemetry())
            assert profile("x.y") is NULL_REGION  # disabled by default
            bundle.profiler.enable()
            with profile("x.y"):
                pass
            assert bundle.profiler.region("x.y").calls == 1
        finally:
            set_current(original)


class TestSimIntegration:
    def test_dispatch_region_wraps_events(self):
        sim = Simulator()
        profiler = Profiler().enable()
        sim.profiler = profiler
        fired = []
        sim.schedule(0.1, fired.append, "a")
        sim.schedule(0.2, fired.append, "b")
        sim.run(until=1.0)
        assert fired == ["a", "b"]
        assert profiler.region("sim.event.dispatch").calls == 2

    def test_step_also_profiled_and_disabled_is_free(self):
        sim = Simulator()
        profiler = Profiler()  # disabled
        sim.profiler = profiler
        sim.schedule(0.1, lambda: None)
        sim.step()
        assert profiler.stats == {}


class TestRegressionHarness:
    def _snapshot(self, scores, throughput=1000.0):
        clock = FakeClock(step=0.0)
        profiler = Profiler(clock=clock).enable()
        calibration = 0.001
        for name, per_call in scores.items():
            with profiler.profile(name):
                clock.advance(per_call * calibration)
        return profile_snapshot(profiler,
                                throughput={"udp_pps": throughput},
                                calibration=calibration)

    def test_snapshot_structure(self):
        snap = self._snapshot({"core.mapping.solve": 2.0})
        assert snap["schema"] == SCHEMA_VERSION
        assert snap["calibration_s"] == 0.001
        region = snap["regions"]["core.mapping.solve"]
        assert region["calls"] == 1
        assert region["score"] == pytest.approx(2.0)
        assert snap["throughput"] == {"udp_pps": 1000.0}

    def test_write_and_load_round_trip(self, tmp_path):
        snap = self._snapshot({"core.mapping.solve": 2.0})
        target = tmp_path / "bench" / "BENCH_profile.json"
        write_profile(target, snap)
        loaded = load_profile(target)
        assert loaded == json.loads(json.dumps(snap))

    def test_comparator_passes_within_threshold(self):
        base = self._snapshot({"core.mapping.solve": 2.0,
                               "netem.link.transmit": 1.0})
        cur = self._snapshot({"core.mapping.solve": 2.2,
                              "netem.link.transmit": 1.05})
        assert compare_profiles(base, cur, threshold=0.15) == []

    def test_comparator_flags_slow_regions(self):
        base = self._snapshot({"core.mapping.solve": 2.0,
                               "netem.link.transmit": 1.0})
        cur = self._snapshot({"core.mapping.solve": 2.5,  # +25%
                              "netem.link.transmit": 1.0})
        findings = compare_profiles(base, cur, threshold=0.15)
        assert len(findings) == 1
        assert findings[0]["kind"] == "region"
        assert findings[0]["name"] == "core.mapping.solve"
        assert findings[0]["change"] == pytest.approx(0.25)
        text = render_comparison(findings, 0.15)
        assert "FAIL" in text and "core.mapping.solve" in text
        assert "PASS" in render_comparison([], 0.15)

    def test_comparator_flags_throughput_drop(self):
        base = self._snapshot({"core.mapping.solve": 2.0},
                              throughput=1000.0)
        cur = self._snapshot({"core.mapping.solve": 2.0},
                             throughput=700.0)  # -30%
        findings = compare_profiles(base, cur, threshold=0.15)
        assert [(f["kind"], f["name"]) for f in findings] == [
            ("throughput", "udp_pps")]

    def test_comparator_flags_missing_guarded_throughput(self):
        base = self._snapshot({"core.mapping.solve": 2.0})
        base["throughput"] = {"udp_pps_wall": 1500.0}
        cur = self._snapshot({"core.mapping.solve": 2.0})
        cur["throughput"] = {}
        findings = compare_profiles(base, cur, threshold=0.15)
        assert [(f["kind"], f["name"]) for f in findings] == [
            ("throughput_missing", "udp_pps_wall")]
        text = render_comparison(findings, 0.15)
        assert "MISSING" in text and "udp_pps_wall" in text

    def test_comparator_skips_missing_unguarded_throughput(self):
        base = self._snapshot({"core.mapping.solve": 2.0})
        base["throughput"] = {"sim_ratio": 3.0}
        cur = self._snapshot({"core.mapping.solve": 2.0})
        cur["throughput"] = {}
        assert compare_profiles(base, cur, threshold=0.15) == []

    def test_guarded_throughput_floor_against_committed_baseline(self):
        baseline = load_profile(os.path.join(
            os.path.dirname(__file__), os.pardir, "BENCH_profile.json"))
        assert baseline["throughput"]["udp_pps_wall"] > 0.0
        ok = dict(baseline)
        assert compare_profiles(baseline, ok, threshold=0.15) == []
        slow = json.loads(json.dumps(baseline))
        slow["throughput"]["udp_pps_wall"] *= 0.8  # -20%
        findings = compare_profiles(baseline, slow, threshold=0.15)
        assert ("throughput", "udp_pps_wall") in [
            (f["kind"], f["name"]) for f in findings]

    def test_comparator_skips_absent_regions(self):
        base = self._snapshot({"core.mapping.solve": 2.0,
                               "pox.steering.install": 1.0})
        cur = self._snapshot({"core.mapping.solve": 2.0})
        assert compare_profiles(base, cur, threshold=0.15) == []

    def test_only_guarded_regions_are_compared(self):
        base = self._snapshot({"some.experimental.region": 1.0})
        cur = self._snapshot({"some.experimental.region": 10.0})
        assert compare_profiles(base, cur, threshold=0.15) == []
        findings = compare_profiles(
            base, cur, threshold=0.15,
            guarded=("some.experimental.region",))
        assert len(findings) == 1

    def test_default_guard_list_covers_all_layers(self):
        prefixes = {name.split(".")[0] for name in DEFAULT_GUARDED}
        assert {"sim", "netem", "click", "openflow", "netconf",
                "core", "pox"} <= prefixes

    def test_calibration_is_positive(self):
        assert calibrate(loops=10_000) > 0.0
