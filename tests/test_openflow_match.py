"""Tests for the OF 1.0 match structure and actions."""

import pytest

from repro.openflow import (Match, Output, SetDlDst, SetDlSrc, SetNwDst,
                            SetNwSrc, SetTpDst, SetTpSrc, SetVlan,
                            StripVlan)
from repro.openflow.actions import apply_actions
from repro.openflow.match import NO_VLAN
from repro.packet import ARP, Ethernet, ICMP, IPv4, TCP, UDP, Vlan


def udp_frame(srcip="10.0.0.1", dstip="10.0.0.2", sport=1000, dport=2000,
              src="00:00:00:00:00:01", dst="00:00:00:00:00:02"):
    return Ethernet(src=src, dst=dst, type=Ethernet.IP_TYPE,
                    payload=IPv4(srcip=srcip, dstip=dstip,
                                 protocol=IPv4.UDP_PROTOCOL,
                                 payload=UDP(srcport=sport, dstport=dport)))


class TestFromPacket:
    def test_udp_fields_extracted(self):
        match = Match.from_packet(udp_frame(), in_port=3)
        assert match.in_port == 3
        assert match.dl_type == Ethernet.IP_TYPE
        assert match.nw_proto == IPv4.UDP_PROTOCOL
        assert str(match.nw_src) == "10.0.0.1"
        assert match.tp_src == 1000
        assert match.tp_dst == 2000
        assert match.dl_vlan == NO_VLAN

    def test_vlan_tagged(self):
        frame = Ethernet(type=Ethernet.VLAN_TYPE,
                         payload=Vlan(vid=55, type=Ethernet.IP_TYPE,
                                      payload=IPv4()))
        match = Match.from_packet(frame)
        assert match.dl_vlan == 55
        assert match.dl_type == Ethernet.IP_TYPE  # effective type

    def test_arp_uses_nw_fields(self):
        frame = Ethernet(type=Ethernet.ARP_TYPE,
                         payload=ARP(opcode=ARP.REQUEST,
                                     protosrc="10.0.0.1",
                                     protodst="10.0.0.2"))
        match = Match.from_packet(frame)
        assert match.nw_proto == ARP.REQUEST
        assert str(match.nw_dst) == "10.0.0.2"

    def test_icmp_type_code_in_tp_fields(self):
        frame = Ethernet(type=Ethernet.IP_TYPE,
                         payload=IPv4(protocol=IPv4.ICMP_PROTOCOL,
                                      payload=ICMP(type=8, code=0)))
        match = Match.from_packet(frame)
        assert match.tp_src == 8
        assert match.tp_dst == 0

    def test_accepts_raw_bytes(self):
        match = Match.from_packet(udp_frame().pack(), in_port=1)
        assert match.tp_dst == 2000


class TestMatching:
    def test_empty_match_is_wildcard(self):
        assert Match().matches_packet(udp_frame(), in_port=9)

    def test_exact_field(self):
        pattern = Match(nw_dst="10.0.0.2")
        assert pattern.matches_packet(udp_frame())
        assert not pattern.matches_packet(udp_frame(dstip="10.0.0.3"))

    def test_in_port_constrains(self):
        pattern = Match(in_port=1)
        assert pattern.matches_packet(udp_frame(), in_port=1)
        assert not pattern.matches_packet(udp_frame(), in_port=2)

    def test_cidr_nw_match(self):
        pattern = Match(nw_src=("10.0.0.0", 24))
        assert pattern.matches_packet(udp_frame(srcip="10.0.0.77"))
        assert not pattern.matches_packet(udp_frame(srcip="10.0.1.77"))

    def test_cidr_string_form(self):
        pattern = Match(nw_src="10.0.0.0/24")
        assert pattern.matches_packet(udp_frame(srcip="10.0.0.5"))

    def test_dl_fields(self):
        pattern = Match(dl_src="00:00:00:00:00:01",
                        dl_dst="00:00:00:00:00:02")
        assert pattern.matches_packet(udp_frame())
        assert not pattern.matches_packet(
            udp_frame(src="00:00:00:00:00:09"))

    def test_vlan_none_vs_tagged(self):
        untagged = Match(dl_vlan=NO_VLAN)
        assert untagged.matches_packet(udp_frame())
        tagged_frame = Ethernet(type=Ethernet.VLAN_TYPE,
                                payload=Vlan(vid=5,
                                             type=Ethernet.IP_TYPE,
                                             payload=IPv4()))
        assert not untagged.matches_packet(tagged_frame)
        assert Match(dl_vlan=5).matches_packet(tagged_frame)

    def test_nw_proto_mismatch(self):
        pattern = Match(nw_proto=IPv4.TCP_PROTOCOL)
        assert not pattern.matches_packet(udp_frame())

    def test_tp_fields_absent_on_non_l4(self):
        pattern = Match(tp_dst=80)
        frame = Ethernet(type=Ethernet.IP_TYPE, payload=IPv4(protocol=99))
        assert not pattern.matches_packet(frame)

    def test_equality_and_hash(self):
        a = Match(in_port=1, nw_src="10.0.0.1")
        b = Match(in_port=1, nw_src="10.0.0.1")
        assert a == b
        assert hash(a) == hash(b)
        assert a != Match(in_port=2, nw_src="10.0.0.1")

    def test_is_subset_of(self):
        specific = Match(in_port=1, nw_src="10.0.0.1", tp_dst=80)
        broad = Match(nw_src="10.0.0.1")
        assert specific.is_subset_of(broad)
        assert not broad.is_subset_of(specific)
        assert specific.is_subset_of(Match())

    def test_wildcard_count(self):
        assert Match().wildcard_count == 11
        assert Match(in_port=1).wildcard_count == 10


class TestActions:
    def test_output_collected_not_applied(self):
        frame, ports = apply_actions([Output(3), Output(7)], udp_frame())
        assert ports == [3, 7]

    def test_set_vlan_pushes_tag(self):
        frame, _ = apply_actions([SetVlan(42)], udp_frame())
        decoded = Ethernet.unpack(frame.pack())
        assert decoded.find(Vlan).vid == 42
        assert decoded.find(IPv4) is not None

    def test_set_vlan_rewrites_existing(self):
        frame, _ = apply_actions([SetVlan(1), SetVlan(2)], udp_frame())
        tags = []
        node = frame
        while node is not None and hasattr(node, "payload"):
            if isinstance(node, Vlan):
                tags.append(node.vid)
            node = node.payload if not isinstance(node.payload, bytes) \
                else None
        assert tags == [2]

    def test_strip_vlan(self):
        frame, _ = apply_actions([SetVlan(9), StripVlan()], udp_frame())
        assert frame.find(Vlan) is None
        assert frame.type == Ethernet.IP_TYPE

    def test_strip_vlan_untagged_noop(self):
        frame, _ = apply_actions([StripVlan()], udp_frame())
        assert frame.find(IPv4) is not None

    def test_set_dl_addresses(self):
        frame, _ = apply_actions(
            [SetDlSrc("00:00:00:00:00:0a"), SetDlDst("00:00:00:00:00:0b")],
            udp_frame())
        assert str(frame.src) == "00:00:00:00:00:0a"
        assert str(frame.dst) == "00:00:00:00:00:0b"

    def test_set_nw_addresses(self):
        frame, _ = apply_actions(
            [SetNwSrc("1.1.1.1"), SetNwDst("2.2.2.2")], udp_frame())
        ip = frame.find(IPv4)
        assert str(ip.srcip) == "1.1.1.1"
        assert str(ip.dstip) == "2.2.2.2"

    def test_set_tp_ports(self):
        frame, _ = apply_actions([SetTpSrc(7), SetTpDst(8)], udp_frame())
        udp = frame.find(UDP)
        assert (udp.srcport, udp.dstport) == (7, 8)

    def test_nw_action_on_non_ip_is_noop(self):
        frame = Ethernet(type=Ethernet.ARP_TYPE, payload=ARP())
        result, _ = apply_actions([SetNwSrc("9.9.9.9")], frame)
        assert result.find(ARP) is not None

    def test_action_equality(self):
        assert Output(1) == Output(1)
        assert Output(1) != Output(2)
        assert SetVlan(5) == SetVlan(5)

    def test_vlan_range_checked(self):
        with pytest.raises(ValueError):
            SetVlan(4096)
