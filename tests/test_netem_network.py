"""Tests for hosts, switches, topologies and the Network object."""

import pytest

from repro.netem import (CLI, LinearTopo, Network, NetworkError,
                         PacketCapture, SingleSwitchTopo, Topo, TreeTopo)
from repro.packet import Ethernet, IPv4, UDP
from repro.pox import Core, L2LearningSwitch, OpenFlowNexus
from repro.sim import Simulator


def controlled_network(sim=None):
    net = Network(sim=sim)
    core = Core(net.sim)
    nexus = OpenFlowNexus(core)
    L2LearningSwitch(nexus)
    net.add_controller(nexus)
    return net


class TestAddressAssignment:
    def test_sequential_ips(self):
        net = Network()
        h1 = net.add_host("h1")
        h2 = net.add_host("h2")
        assert str(h1.ip) == "10.0.0.1"
        assert str(h2.ip) == "10.0.0.2"

    def test_explicit_ip_honoured(self):
        net = Network()
        host = net.add_host("h1", ip="192.168.7.7")
        assert str(host.ip) == "192.168.7.7"

    def test_unique_macs(self):
        net = Network()
        macs = {str(net.add_host("h%d" % i).mac) for i in range(20)}
        assert len(macs) == 20

    def test_duplicate_name_rejected(self):
        net = Network()
        net.add_host("x")
        with pytest.raises(NetworkError):
            net.add_switch("x")

    def test_get_unknown_raises(self):
        with pytest.raises(NetworkError):
            Network().get("nope")

    def test_getitem(self):
        net = Network()
        host = net.add_host("h1")
        assert net["h1"] is host


class TestLinks:
    def test_host_reuses_primary_interface(self):
        net = Network()
        h1 = net.add_host("h1")
        s1 = net.add_switch("s1")
        net.add_link(h1, s1)
        assert len(h1.interfaces) == 1

    def test_second_host_link_adds_interface(self):
        net = Network()
        h1 = net.add_host("h1")
        s1, s2 = net.add_switch("s1"), net.add_switch("s2")
        net.add_link(h1, s1)
        net.add_link(h1, s2)
        assert len(h1.interfaces) == 2

    def test_links_by_name(self):
        net = Network()
        net.add_host("h1")
        net.add_switch("s1")
        link = net.add_link("h1", "s1")
        assert link in net.links_of("h1")
        assert link in net.links_of("s1")

    def test_switch_ports_numbered_in_order(self):
        net = Network()
        s1 = net.add_switch("s1")
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        net.add_link(h1, s1)
        net.add_link(h2, s1)
        assert sorted(s1.datapath.ports) == [1, 2]


class TestPingAndUdp:
    def test_ping_through_one_switch(self):
        net = controlled_network()
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        s1 = net.add_switch("s1")
        net.add_link(h1, s1, delay=0.001)
        net.add_link(h2, s1, delay=0.001)
        net.start()
        result = h1.ping(h2.ip, count=3, interval=0.1)
        net.run(2.0)
        assert result.received == 3
        assert result.loss_percent == 0.0
        assert result.min_rtt > 0.002  # at least 4 link traversals

    def test_ping_unreachable_loses_everything(self):
        net = controlled_network()
        h1 = net.add_host("h1")
        s1 = net.add_switch("s1")
        net.add_link(h1, s1)
        net.start()
        result = h1.ping("10.9.9.9", count=2, interval=0.1)
        net.run(3.0)
        assert result.received == 0
        assert result.loss_percent == 100.0

    def test_ping_all_full_mesh(self):
        net = controlled_network()
        topo_hosts = [net.add_host("h%d" % i) for i in range(1, 4)]
        s1 = net.add_switch("s1")
        for host in topo_hosts:
            net.add_link(host, s1)
        net.start()
        sent, received = net.ping_all()
        assert sent == 6
        assert received == 6

    def test_udp_delivery_and_handler(self):
        net = controlled_network()
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        s1 = net.add_switch("s1")
        net.add_link(h1, s1)
        net.add_link(h2, s1)
        net.start()
        net.static_arp()
        got = []
        h2.bind_udp(5001, lambda src, sport, data: got.append(data))
        h1.send_udp(h2.ip, 5001, b"payload-1")
        net.run(1.0)
        assert got == [b"payload-1"]
        assert h2.udp_rx_count == 1

    def test_udp_flow_rate(self):
        net = controlled_network()
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        s1 = net.add_switch("s1")
        net.add_link(h1, s1)
        net.add_link(h2, s1)
        net.start()
        net.static_arp()
        report = h1.start_udp_flow(h2.ip, 7000, rate_pps=100,
                                   duration=1.0, payload_size=100)
        net.run(2.0)
        assert report.finished
        assert report.sent == 100
        assert h2.udp_rx_count == 100

    def test_static_arp_suppresses_arp_traffic(self):
        net = controlled_network()
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        s1 = net.add_switch("s1")
        net.add_link(h1, s1)
        net.add_link(h2, s1)
        net.start()
        net.static_arp()
        capture = PacketCapture(
            filter_fn=lambda f: f.type == Ethernet.ARP_TYPE)
        h1.attach_capture(capture)
        h1.ping(h2.ip, count=1)
        net.run(1.0)
        assert capture.matched == 0

    def test_capture_records_frames(self):
        net = controlled_network()
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        s1 = net.add_switch("s1")
        net.add_link(h1, s1)
        net.add_link(h2, s1)
        net.start()
        net.static_arp()
        capture = PacketCapture()
        h2.attach_capture(capture)
        h1.send_udp(h2.ip, 1234, b"x")
        net.run(1.0)
        assert capture.matched >= 1
        assert any(entry.direction == "rx" for entry in capture.frames)


class TestTopoBuilders:
    def test_single_switch(self):
        topo = SingleSwitchTopo(k=4)
        assert len(topo.hosts()) == 4
        assert len(topo.switches()) == 1
        assert len(topo.links) == 4

    def test_linear(self):
        topo = LinearTopo(k=3, n=2)
        assert len(topo.switches()) == 3
        assert len(topo.hosts()) == 6
        assert len(topo.links) == 2 + 6  # switch spine + host links

    def test_tree(self):
        topo = TreeTopo(depth=2, fanout=2)
        assert len(topo.switches()) == 3
        assert len(topo.hosts()) == 4

    def test_build_and_ping(self):
        net = controlled_network()
        built = Network.build(LinearTopo(k=2, n=1), sim=net.sim)
        # rebuild with controller: simpler to attach controller first
        net2 = Network.build(LinearTopo(k=2, n=1))
        core = Core(net2.sim)
        nexus = OpenFlowNexus(core)
        L2LearningSwitch(nexus)
        net2.add_controller(nexus)
        net2.start()
        sent, received = net2.ping_all()
        assert sent == received == 2

    def test_duplicate_node_rejected(self):
        topo = Topo()
        topo.add_host("x")
        with pytest.raises(ValueError):
            topo.add_switch("x")

    def test_link_to_unknown_rejected(self):
        topo = Topo()
        topo.add_host("a")
        with pytest.raises(ValueError):
            topo.add_link("a", "ghost")


class TestCLI:
    def _net(self):
        net = controlled_network()
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        s1 = net.add_switch("s1")
        net.add_link(h1, s1)
        net.add_link(h2, s1)
        net.start()
        return net

    def test_nodes(self):
        cli = CLI(self._net())
        output = cli.run_command("nodes")
        assert "h1" in output and "s1" in output

    def test_net_shows_peers(self):
        cli = CLI(self._net())
        assert "s1:" in cli.run_command("net")

    def test_pingall(self):
        cli = CLI(self._net())
        assert "0% dropped" in cli.run_command("pingall")

    def test_ping_between_hosts(self):
        cli = CLI(self._net())
        output = cli.run_command("ping h1 h2 2")
        assert "2 packets transmitted, 2 received" in output

    def test_flows_lists_entries(self):
        net = self._net()
        cli = CLI(net)
        cli.run_command("pingall")
        assert "dpid 1" in cli.run_command("flows")

    def test_unknown_command(self):
        cli = CLI(self._net())
        assert "Unknown command" in cli.run_command("frobnicate")

    def test_error_surfaced_not_raised(self):
        cli = CLI(self._net())
        assert "Error" in cli.run_command("ping h1 ghost")

    def test_empty_line(self):
        cli = CLI(self._net())
        assert cli.run_command("   ") == ""

    def test_vnfs_and_resources_empty(self):
        cli = CLI(self._net())
        assert "no VNF containers" in cli.run_command("vnfs")
        assert "no VNF containers" in cli.run_command("resources")

    def test_help(self):
        assert "pingall" in CLI(self._net()).run_command("help")

    def test_interact_repl_scripted(self):
        cli = CLI(self._net())
        script = iter(["nodes", "bogus-command", "exit"])
        outputs = []
        cli.interact(input_fn=lambda prompt: next(script),
                     output_fn=outputs.append)
        joined = "\n".join(outputs)
        assert "h1" in joined
        assert "Unknown command" in joined

    def test_interact_handles_eof(self):
        cli = CLI(self._net())

        def raise_eof(prompt):
            raise EOFError

        outputs = []
        cli.interact(input_fn=raise_eof, output_fn=outputs.append)
        assert outputs  # greeted, then exited cleanly
