"""Tests for the controller-side statistics collector."""

import pytest

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology
from repro.netem import Network
from repro.pox import Core, L2LearningSwitch, OpenFlowNexus, StatsCollector

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "bandwidth": 100e6, "delay": 0.001},
        {"from": "s1", "to": "s2", "bandwidth": 100e6, "delay": 0.001},
        {"from": "h2", "to": "s2", "bandwidth": 100e6, "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
    ],
}


def standalone_rig():
    net = Network()
    core = Core(net.sim)
    nexus = OpenFlowNexus(core)
    L2LearningSwitch(nexus)
    stats = StatsCollector(nexus, interval=0.5)
    h1, h2 = net.add_host("h1"), net.add_host("h2")
    s1 = net.add_switch("s1")
    net.add_link(h1, s1)
    net.add_link(h2, s1)
    net.add_controller(nexus)
    net.start()
    net.static_arp()
    return net, stats, h1, h2


class TestStandaloneCollector:
    def test_polling_starts_with_first_connection(self):
        net, stats, _h1, _h2 = standalone_rig()
        net.run(2.0)
        assert stats.poll_rounds >= 3

    def test_port_counters_collected(self):
        net, stats, h1, h2 = standalone_rig()
        h1.start_udp_flow(h2.ip, 5001, rate_pps=100, duration=1.0,
                          payload_size=400)
        net.run(3.0)
        sample = stats.port_counters(1, 1)
        assert sample is not None
        assert sample.rx_packets >= 100

    def test_port_rates_reflect_traffic(self):
        net, stats, h1, h2 = standalone_rig()
        net.run(1.5)  # a couple of idle samples
        h1.start_udp_flow(h2.ip, 5001, rate_pps=200, duration=2.0,
                          payload_size=500)
        net.run(1.5)  # mid-flow
        rate = stats.port_rate(1, 1)
        assert rate is not None
        rx_bps, _tx_bps = rate
        # ~200 pps x ~540 B (payload + headers) x 8 ~ 860 kbit/s
        assert rx_bps > 300e3

    def test_rates_fall_back_to_zero_after_flow(self):
        net, stats, h1, h2 = standalone_rig()
        h1.start_udp_flow(h2.ip, 5001, rate_pps=200, duration=0.5,
                          payload_size=500)
        net.run(5.0)  # flow long gone, fresh idle samples
        rx_bps, tx_bps = stats.port_rate(1, 1)
        assert rx_bps == pytest.approx(0.0)
        assert tx_bps == pytest.approx(0.0)

    def test_flow_stats_tracked(self):
        net, stats, h1, h2 = standalone_rig()
        h1.ping(h2.ip, count=2, interval=0.2)
        net.run(3.0)
        # l2_learning installed entries; the collector sees them
        assert stats.flow_count(1) > 0

    def test_busiest_ports_ordering(self):
        net, stats, h1, h2 = standalone_rig()
        net.run(1.5)
        h1.start_udp_flow(h2.ip, 5001, rate_pps=300, duration=2.0,
                          payload_size=600)
        net.run(1.5)
        busiest = stats.busiest_ports(top=2)
        assert busiest
        # the port toward h2 carries the flow's tx
        assert busiest[0][2] > 0

    def test_stop_halts_polling(self):
        net, stats, _h1, _h2 = standalone_rig()
        net.run(1.0)
        rounds = stats.poll_rounds
        stats.stop()
        net.run(3.0)
        assert stats.poll_rounds == rounds


class TestEscapeIntegration:
    def test_stats_registered_as_component(self):
        escape = ESCAPE.from_topology(load_topology(TOPOLOGY))
        escape.start()
        assert escape.core.component("stats") is escape.stats

    def test_annotate_view_with_measured_rates(self):
        escape = ESCAPE.from_topology(load_topology(TOPOLOGY))
        escape.start()
        escape.run(1.5)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        h1.start_udp_flow(h2.ip, 5001, rate_pps=200, duration=2.0,
                          payload_size=500)
        escape.run(1.5)
        annotated = escape.stats.annotate_view(
            escape.orchestrator.view, escape.net)
        assert annotated > 0
        spine = escape.orchestrator.view.graph.edges["s1", "s2"]
        assert spine["measured_bps"] > 100e3
