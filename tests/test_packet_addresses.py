"""Tests for EthAddr and IPAddr value types."""

import pytest
from hypothesis import given, strategies as st

from repro.packet import BROADCAST, EthAddr, IPAddr, is_multicast


class TestEthAddr:
    def test_from_string(self):
        addr = EthAddr("00:11:22:33:44:55")
        assert str(addr) == "00:11:22:33:44:55"

    def test_from_dashes(self):
        assert EthAddr("00-11-22-33-44-55") == EthAddr("00:11:22:33:44:55")

    def test_from_bytes_roundtrip(self):
        raw = bytes(range(6))
        assert EthAddr(raw).raw == raw

    def test_from_int_roundtrip(self):
        assert EthAddr(0x001122334455).to_int() == 0x001122334455

    def test_copy_constructor(self):
        original = EthAddr("aa:bb:cc:dd:ee:ff")
        assert EthAddr(original) == original

    @pytest.mark.parametrize("bad", ["", "00:11:22", "00:11:22:33:44:GG",
                                     "0:1:2:3:4:5", "001122334455"])
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(ValueError):
            EthAddr(bad)

    def test_wrong_byte_length_rejected(self):
        with pytest.raises(ValueError):
            EthAddr(b"\x00" * 5)

    def test_int_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            EthAddr(1 << 48)

    def test_broadcast_properties(self):
        assert BROADCAST.is_broadcast
        assert BROADCAST.is_multicast

    def test_multicast_bit(self):
        assert EthAddr("01:00:5e:00:00:01").is_multicast
        assert not EthAddr("00:00:5e:00:00:01").is_multicast
        assert is_multicast("01:00:00:00:00:00")

    def test_local_bit(self):
        assert EthAddr("02:00:00:00:00:01").is_local
        assert not EthAddr("00:00:00:00:00:01").is_local

    def test_equality_with_string(self):
        assert EthAddr("aa:bb:cc:dd:ee:ff") == "AA:BB:CC:DD:EE:FF"

    def test_hashable(self):
        table = {EthAddr("00:00:00:00:00:01"): "one"}
        assert table[EthAddr(1)] == "one"

    def test_ordering(self):
        assert EthAddr(1) < EthAddr(2)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_int_string_roundtrip(self, value):
        addr = EthAddr(value)
        assert EthAddr(str(addr)).to_int() == value


class TestIPAddr:
    def test_from_string(self):
        assert str(IPAddr("10.0.0.1")) == "10.0.0.1"

    def test_from_int(self):
        assert IPAddr(0x0A000001) == IPAddr("10.0.0.1")

    def test_from_bytes(self):
        assert IPAddr(b"\x0a\x00\x00\x01") == "10.0.0.1"

    @pytest.mark.parametrize("bad", ["", "10.0.0", "10.0.0.0.1",
                                     "10.0.0.256", "a.b.c.d", "10.0.-1.0"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            IPAddr(bad)

    def test_int_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            IPAddr(1 << 32)

    def test_in_network_cidr_string(self):
        assert IPAddr("10.1.2.3").in_network("10.0.0.0/8")
        assert not IPAddr("11.1.2.3").in_network("10.0.0.0/8")

    def test_in_network_explicit_prefix(self):
        assert IPAddr("192.168.1.7").in_network("192.168.1.0", 24)
        assert not IPAddr("192.168.2.7").in_network("192.168.1.0", 24)

    def test_in_network_zero_prefix_matches_all(self):
        assert IPAddr("1.2.3.4").in_network("0.0.0.0/0")

    def test_in_network_host_prefix(self):
        assert IPAddr("1.2.3.4").in_network("1.2.3.4/32")
        assert not IPAddr("1.2.3.5").in_network("1.2.3.4/32")

    def test_in_network_requires_prefix(self):
        with pytest.raises(ValueError):
            IPAddr("1.2.3.4").in_network("10.0.0.0")

    def test_in_network_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            IPAddr("1.2.3.4").in_network("10.0.0.0", 33)

    def test_multicast_and_broadcast(self):
        assert IPAddr("224.0.0.1").is_multicast
        assert not IPAddr("223.255.255.255").is_multicast
        assert IPAddr("255.255.255.255").is_broadcast

    def test_addition_wraps(self):
        assert IPAddr("10.0.0.1") + 1 == IPAddr("10.0.0.2")
        assert IPAddr("255.255.255.255") + 1 == IPAddr("0.0.0.0")

    def test_ordering(self):
        assert IPAddr("10.0.0.1") < IPAddr("10.0.0.2")

    def test_hashable(self):
        assert {IPAddr("1.1.1.1"): "x"}[IPAddr("1.1.1.1")] == "x"

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_int_string_roundtrip(self, value):
        assert IPAddr(str(IPAddr(value))).to_int() == value

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1),
           st.integers(min_value=0, max_value=32))
    def test_address_always_in_own_network(self, value, prefix):
        addr = IPAddr(value)
        assert addr.in_network(addr, prefix)
