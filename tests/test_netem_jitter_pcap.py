"""Tests for link jitter and pcap export."""

import struct

import pytest

from repro.netem import Interface, Link, Network, PacketCapture
from repro.packet import EthAddr, Ethernet
from repro.pox import Core, L2LearningSwitch, OpenFlowNexus
from repro.sim import Simulator


def make_pair(sim, **link_opts):
    intf1 = Interface("a-eth0", None, EthAddr(1))
    intf2 = Interface("b-eth0", None, EthAddr(2))
    link = Link(sim, intf1, intf2, **link_opts)
    return intf1, intf2, link


class TestJitter:
    def test_jitter_varies_latency(self):
        sim = Simulator()
        intf1, intf2, _link = make_pair(sim, delay=0.01, jitter=0.005)
        times = []
        intf2.set_receiver(lambda intf, data: times.append(sim.now))
        for index in range(20):
            sim.schedule(index * 0.1, intf1.send, b"x")
        sim.run()
        latencies = [t - index * 0.1 for index, t in enumerate(times)]
        assert min(latencies) >= 0.01 - 1e-9
        assert max(latencies) <= 0.015 + 1e-9
        assert max(latencies) - min(latencies) > 0.001  # actually varies

    def test_zero_jitter_is_deterministic_delay(self):
        sim = Simulator()
        intf1, intf2, _link = make_pair(sim, delay=0.01)
        times = []
        intf2.set_receiver(lambda intf, data: times.append(sim.now))
        intf1.send(b"x")
        sim.run()
        assert times == [pytest.approx(0.01)]

    def test_jitter_is_seeded_deterministic(self):
        def run_once():
            sim = Simulator()
            intf1, intf2, _link = make_pair(sim, delay=0.01,
                                            jitter=0.01)
            times = []
            intf2.set_receiver(lambda intf, data: times.append(sim.now))
            for _ in range(5):
                intf1.send(b"x")
            sim.run()
            return times
        assert run_once() == run_once()

    def test_negative_jitter_rejected(self):
        sim = Simulator()
        intf1 = Interface("a", None, EthAddr(1))
        intf2 = Interface("b", None, EthAddr(2))
        with pytest.raises(ValueError):
            Link(sim, intf1, intf2, jitter=-0.1)


class TestPcapExport:
    def _capture_some_traffic(self):
        net = Network()
        nexus = OpenFlowNexus(Core(net.sim))
        L2LearningSwitch(nexus)
        h1, h2 = net.add_host("h1"), net.add_host("h2")
        s1 = net.add_switch("s1")
        net.add_link(h1, s1)
        net.add_link(h2, s1)
        net.add_controller(nexus)
        net.start()
        net.static_arp()
        capture = PacketCapture()
        h2.attach_capture(capture)
        h1.send_udp(h2.ip, 5001, b"payload-for-pcap")
        net.run(1.0)
        return capture

    def test_pcap_global_header(self, tmp_path):
        capture = self._capture_some_traffic()
        path = tmp_path / "trace.pcap"
        written = capture.write_pcap(str(path))
        assert written == len(capture.frames) > 0
        blob = path.read_bytes()
        magic, major, minor, _tz, _sig, snaplen, linktype = \
            struct.unpack("!IHHiIII", blob[:24])
        assert magic == 0xA1B2C3D4
        assert (major, minor) == (2, 4)
        assert linktype == 1  # Ethernet

    def test_records_parse_back_to_frames(self, tmp_path):
        capture = self._capture_some_traffic()
        path = tmp_path / "trace.pcap"
        capture.write_pcap(str(path))
        blob = path.read_bytes()
        offset = 24
        frames = []
        while offset < len(blob):
            _sec, _usec, incl_len, orig_len = struct.unpack_from(
                "!IIII", blob, offset)
            assert incl_len == orig_len
            offset += 16
            frames.append(Ethernet.unpack(blob[offset:offset + incl_len]))
            offset += incl_len
        assert len(frames) == len(capture.frames)
        payloads = [frame.raw_payload() for frame in frames]
        assert any(b"payload-for-pcap" in payload
                   for payload in payloads)

    def test_timestamps_monotonic(self, tmp_path):
        capture = self._capture_some_traffic()
        path = tmp_path / "trace.pcap"
        capture.write_pcap(str(path))
        blob = path.read_bytes()
        offset = 24
        stamps = []
        while offset < len(blob):
            sec, usec, incl_len, _orig = struct.unpack_from("!IIII",
                                                            blob, offset)
            stamps.append(sec + usec * 1e-6)
            offset += 16 + incl_len
        assert stamps == sorted(stamps)

    def test_snaplen_truncates(self, tmp_path):
        capture = self._capture_some_traffic()
        path = tmp_path / "short.pcap"
        capture.write_pcap(str(path), snaplen=20)
        blob = path.read_bytes()
        _sec, _usec, incl_len, orig_len = struct.unpack_from(
            "!IIII", blob, 24)
        assert incl_len == 20
        assert orig_len > 20
