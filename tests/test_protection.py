"""Tests for proactive chain protection: the group table and its wire
codec, port-liveness PortStatus propagation, disjoint backup path
computation, fast-failover steering, flip-based recovery accounting
and the link_flap chaos primitive."""

import pytest

from repro.chaos import FaultError, LinkFlapFault
from repro.core import ESCAPE
from repro.core.mapping import compute_backup_paths
from repro.core.sgfile import load_service_graph, load_topology
from repro.openflow import (ControllerChannel, Group, GroupBucket,
                            GroupEntry, GroupError, GroupMod, GroupTable,
                            Match, OpenFlowSwitch, Output, PortStatus)
from repro.openflow.wire import (WireError, pack_message, unpack_message)
from repro.sim import Simulator


def bucket(port, watch=None):
    return GroupBucket([Output(port)],
                       watch_port=port if watch is None else watch)


# -- the group table ----------------------------------------------------------


class TestGroupTable:
    def test_add_get_delete(self):
        table = GroupTable()
        table.add(1, GroupEntry.FAST_FAILOVER, [bucket(2)])
        assert 1 in table and len(table) == 1
        assert table.get(1).buckets[0].watch_port == 2
        assert table.delete(1).group_id == 1
        assert table.delete(1) is None  # DELETE of absent: no error

    def test_duplicate_add_rejected(self):
        table = GroupTable()
        table.add(1, GroupEntry.FAST_FAILOVER, [bucket(2)])
        with pytest.raises(GroupError) as info:
            table.add(1, GroupEntry.FAST_FAILOVER, [bucket(3)])
        assert info.value.code == GroupError.GROUP_EXISTS

    def test_only_fast_failover_installs(self):
        table = GroupTable()
        with pytest.raises(GroupError) as info:
            table.add(1, GroupMod.TYPE_SELECT, [bucket(2)])
        assert info.value.code == GroupError.INVALID_GROUP

    def test_empty_buckets_rejected(self):
        table = GroupTable()
        with pytest.raises(GroupError):
            table.add(1, GroupEntry.FAST_FAILOVER, [])

    def test_modify_unknown_group(self):
        table = GroupTable()
        with pytest.raises(GroupError) as info:
            table.modify(9, GroupEntry.FAST_FAILOVER, [bucket(2)])
        assert info.value.code == GroupError.UNKNOWN_GROUP

    def test_modify_resets_current_bucket(self):
        table = GroupTable()
        entry = table.add(1, GroupEntry.FAST_FAILOVER, [bucket(2)])
        entry.current_bucket = 1
        again = table.modify(1, GroupEntry.FAST_FAILOVER,
                             [bucket(2), bucket(3)])
        assert again.current_bucket is None
        assert len(again.buckets) == 2


class _FakePort:
    def __init__(self, up=True):
        self.up = up


class TestGroupEntrySelect:
    def test_first_live_bucket_wins(self):
        entry = GroupEntry(1, GroupEntry.FAST_FAILOVER,
                           [bucket(2), bucket(3)])
        ports = {2: _FakePort(up=True), 3: _FakePort(up=True)}
        index, chosen = entry.select(ports)
        assert index == 0 and chosen.actions == [Output(2)]
        ports[2].up = False
        index, chosen = entry.select(ports)
        assert index == 1 and chosen.actions == [Output(3)]

    def test_no_live_bucket(self):
        entry = GroupEntry(1, GroupEntry.FAST_FAILOVER,
                           [bucket(2), bucket(3)])
        ports = {2: _FakePort(up=False), 3: _FakePort(up=False)}
        assert entry.select(ports) is None

    def test_watch_none_always_live(self):
        entry = GroupEntry(1, GroupEntry.FAST_FAILOVER,
                           [bucket(2), bucket(9, GroupBucket.WATCH_NONE)])
        ports = {2: _FakePort(up=False)}
        index, chosen = entry.select(ports)
        assert index == 1 and chosen.actions == [Output(9)]


# -- wire codec ---------------------------------------------------------------


class TestGroupModWire:
    def test_round_trip(self):
        original = GroupMod(GroupMod.ADD, 7,
                            buckets=[bucket(2), bucket(3)], xid=99)
        again = unpack_message(pack_message(original))
        assert isinstance(again, GroupMod)
        assert again.command == GroupMod.ADD
        assert again.group_id == 7 and again.xid == 99
        assert again.group_type == GroupMod.TYPE_FAST_FAILOVER
        assert again.buckets == original.buckets

    def test_watch_none_round_trip(self):
        original = GroupMod(GroupMod.MODIFY, 3,
                            buckets=[bucket(4, GroupBucket.WATCH_NONE)])
        again = unpack_message(pack_message(original))
        assert again.buckets[0].watch_port == GroupBucket.WATCH_NONE

    def test_delete_carries_no_buckets(self):
        again = unpack_message(pack_message(GroupMod(GroupMod.DELETE, 5)))
        assert again.command == GroupMod.DELETE
        assert again.group_id == 5 and again.buckets == []

    def test_group_action_round_trip(self):
        original = GroupMod(GroupMod.ADD, 1,
                            buckets=[GroupBucket([Group(12)],
                                                 watch_port=2)])
        again = unpack_message(pack_message(original))
        assert again.buckets[0].actions == [Group(12)]

    def test_truncated_body_rejected(self):
        wire = pack_message(GroupMod(GroupMod.ADD, 7, buckets=[bucket(2)]))
        header = wire[:8]
        truncated = header[:2] + b"\x00\x0c" + header[4:] + wire[8:12]
        with pytest.raises(WireError):
            unpack_message(truncated)

    def test_truncated_bucket_rejected(self):
        wire = bytearray(pack_message(
            GroupMod(GroupMod.ADD, 7, buckets=[bucket(2)])))
        # corrupt the bucket length so it overruns the message body
        wire[16:18] = b"\x00\xff"
        with pytest.raises(WireError):
            unpack_message(bytes(wire))


# -- the switch: local flips and PortStatus -----------------------------------


class HarnessedSwitch:
    def __init__(self, ports=3):
        self.sim = Simulator()
        self.switch = OpenFlowSwitch(self.sim, dpid=1)
        self.sent = {n: [] for n in range(1, ports + 1)}
        for n in range(1, ports + 1):
            port = self.switch.add_port(n)
            port.transmit = self.sent[n].append
        self.channel = ControllerChannel(self.sim)
        self.received = []
        self.channel.set_controller_receiver(self.received.append)
        self.switch.connect_controller(self.channel)
        self.sim.run(until=0.01)

    def run(self, duration=0.01):
        self.sim.run(until=self.sim.now + duration)

    def messages(self, kind):
        return [m for m in self.received if isinstance(m, kind)]


def ff_group(gid=1, primary=2, backup=3):
    return GroupMod(GroupMod.ADD, gid,
                    buckets=[bucket(primary), bucket(backup)])


def frame():
    from repro.packet import Ethernet, IPv4, UDP
    return Ethernet(src="00:00:00:00:00:01", dst="00:00:00:00:00:02",
                    type=Ethernet.IP_TYPE,
                    payload=IPv4(srcip="10.0.0.1", dstip="10.0.0.2",
                                 protocol=IPv4.UDP_PROTOCOL,
                                 payload=UDP(srcport=1,
                                             dstport=2))).pack()


class TestSwitchFailover:
    def install(self, harness):
        harness.channel.send_to_switch(ff_group())
        from repro.openflow import FlowMod
        harness.channel.send_to_switch(
            FlowMod(Match(in_port=1), [Group(1)]))
        harness.run()

    def test_forwards_via_primary_bucket(self):
        harness = HarnessedSwitch()
        self.install(harness)
        harness.switch.ports[1].receive(frame())
        harness.run()
        assert harness.sent[2] and not harness.sent[3]
        assert harness.switch.group_flip_count == 0

    def test_port_down_flips_to_backup_without_controller(self):
        harness = HarnessedSwitch()
        self.install(harness)
        harness.switch.ports[1].receive(frame())
        harness.run()
        harness.switch.set_port_up(2, False)
        harness.switch.ports[1].receive(frame())
        harness.run()
        assert len(harness.sent[3]) == 1  # repaired in the dataplane
        assert harness.switch.group_flip_count == 1
        # and flips back when the primary watch port heals
        harness.switch.set_port_up(2, True)
        harness.switch.ports[1].receive(frame())
        harness.run()
        assert len(harness.sent[2]) == 2
        assert harness.switch.group_flip_count == 2

    def test_all_buckets_dead_drops(self):
        harness = HarnessedSwitch()
        self.install(harness)
        harness.switch.set_port_up(2, False)
        harness.switch.set_port_up(3, False)
        harness.switch.ports[1].receive(frame())
        harness.run()
        assert not harness.sent[2] and not harness.sent[3]

    def test_set_port_up_emits_port_status(self):
        harness = HarnessedSwitch()
        harness.switch.set_port_up(2, False)
        harness.run()
        changes = [m for m in harness.messages(PortStatus)
                   if m.reason == PortStatus.REASON_MODIFY]
        assert changes and changes[-1].desc.port_no == 2
        assert changes[-1].desc.link_down
        harness.switch.set_port_up(2, True)
        harness.run()
        changes = [m for m in harness.messages(PortStatus)
                   if m.reason == PortStatus.REASON_MODIFY]
        assert not changes[-1].desc.link_down

    def test_bad_group_mod_answered_with_error(self):
        from repro.openflow.messages import ErrorMessage
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(ff_group(gid=4))
        harness.channel.send_to_switch(ff_group(gid=4))  # duplicate ADD
        harness.run()
        errors = harness.messages(ErrorMessage)
        assert errors
        assert errors[-1].error_type == ErrorMessage.TYPE_GROUP_MOD_FAILED
        assert errors[-1].code == GroupError.GROUP_EXISTS


# -- backup path computation --------------------------------------------------


def topo(links, extra_nodes=()):
    nodes = [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "c1", "role": "vnf_container", "cpu": 4, "mem": 4096},
    ]
    nodes.extend(extra_nodes)
    return load_topology({"nodes": nodes, "links": links})


SG = {
    "name": "chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow icmp, drop all"}}],
    "chain": ["h1", "fw", "h2"],
}

DETOUR_LINKS = [
    {"from": "h1", "to": "s1", "delay": 0.001},
    {"from": "h2", "to": "s2", "delay": 0.001},
    {"from": "s1", "to": "s2", "delay": 0.002},
    {"from": "s1", "to": "s3", "delay": 0.003},
    {"from": "s3", "to": "s2", "delay": 0.003},
    {"from": "c1", "to": "s1", "delay": 0.0005},
    {"from": "c1", "to": "s1", "delay": 0.0005},
]

SWITCHES = tuple({"name": name, "role": "switch"}
                 for name in ("s1", "s2", "s3"))


def deploy(topology, protection=True, extra_start=None):
    escape = ESCAPE.from_topology(topology, protection=protection)
    escape.start()
    if extra_start is not None:
        extra_start(escape)
    chain = escape.deploy_service(load_service_graph(SG))
    return escape, chain


class TestBackupComputation:
    def test_disjoint_detour_found(self):
        escape, chain = deploy(topo(DETOUR_LINKS, SWITCHES))
        info = chain.mapping.backup_info[("fw", "h2")]
        assert info["disjoint"] is True and info["shared_edges"] == []
        backup = chain.mapping.backup_paths[("fw", "h2")]
        assert "s3" in backup  # rides the detour, not the trunk
        escape.stop()

    def test_no_alternative_disables_protection(self):
        links = [link for link in DETOUR_LINKS
                 if "s3" not in (link["from"], link["to"])]
        switches = tuple(n for n in SWITCHES if n["name"] != "s3")
        escape, chain = deploy(topo(links, switches))
        assert ("fw", "h2") not in chain.mapping.backup_paths
        info = chain.mapping.backup_info[("fw", "h2")]
        assert info["disjoint"] is False
        assert info["reason"] == "no alternative"
        disabled = escape.telemetry.events.query(
            name="protection.disabled")
        assert disabled
        escape.stop()

    def test_backup_avoids_down_link(self):
        # with the detour dead before deploy (and the recovery manager
        # given time to mark the edge down in the view), the only
        # remaining path is the primary: protection must not pick a
        # dead link as the backup
        def kill_detour(escape):
            escape.net.links_between("s1", "s3")[0].set_up(False)
            escape.run(0.2)
        escape, chain = deploy(topo(DETOUR_LINKS, SWITCHES),
                               extra_start=kill_detour)
        assert ("fw", "h2") not in chain.mapping.backup_paths
        escape.stop()

    def test_maximally_disjoint_shares_unavoidable_edge(self):
        # alternative exists only around the s1-s2 trunk; every path
        # must still cross s2-s3 to reach h2 -> maximally disjoint
        links = [
            {"from": "h1", "to": "s1", "delay": 0.001},
            {"from": "s1", "to": "s2", "delay": 0.002},
            {"from": "s1", "to": "s4", "delay": 0.003},
            {"from": "s4", "to": "s2", "delay": 0.003},
            {"from": "s2", "to": "s3", "delay": 0.002},
            {"from": "h2", "to": "s3", "delay": 0.001},
            {"from": "c1", "to": "s1", "delay": 0.0005},
            {"from": "c1", "to": "s1", "delay": 0.0005},
        ]
        switches = SWITCHES + ({"name": "s4", "role": "switch"},)
        escape, chain = deploy(topo(links, switches))
        info = chain.mapping.backup_info[("fw", "h2")]
        assert info["disjoint"] is False
        assert info["shared_edges"]  # the unavoidable s2-s3 hop
        backup = chain.mapping.backup_paths[("fw", "h2")]
        assert "s4" in backup
        degraded = escape.telemetry.events.query(
            name="protection.degraded")
        assert degraded
        escape.stop()

    def test_recompute_clears_stale_entries(self):
        escape, chain = deploy(topo(DETOUR_LINKS, SWITCHES))
        assert ("fw", "h2") in chain.mapping.backup_paths
        escape.net.links_between("s1", "s3")[0].set_up(False)
        escape.run(0.2)  # the view learns of the down edge
        compute_backup_paths(
            load_service_graph(SG), chain.mapping,
            escape.orchestrator.view)
        assert ("fw", "h2") not in chain.mapping.backup_paths
        escape.stop()

    def test_backup_placement_prefers_other_container(self):
        links = DETOUR_LINKS + [
            {"from": "c2", "to": "s2", "delay": 0.0005},
            {"from": "c2", "to": "s2", "delay": 0.0005},
        ]
        extra = SWITCHES + ({"name": "c2", "role": "vnf_container",
                             "cpu": 4, "mem": 4096},)
        escape, chain = deploy(topo(links, extra))
        primary = chain.mapping.vnf_placement["fw"]
        backup = chain.mapping.backup_placement["fw"]
        assert backup != primary
        escape.stop()

    def test_single_container_has_no_backup_placement(self):
        escape, chain = deploy(topo(DETOUR_LINKS, SWITCHES))
        assert "fw" not in chain.mapping.backup_placement
        escape.stop()


# -- steering + recovery end to end -------------------------------------------


class TestProtectedSteering:
    def test_protected_install_and_group_index(self):
        escape, chain = deploy(topo(DETOUR_LINKS, SWITCHES))
        protected = escape.steering.protected_paths()
        assert protected and all(p.startswith("chain/")
                                 for p in protected)
        assert escape.steering.group_mods_sent > 0
        (dpid, gid), path_id = next(
            iter(escape.steering._group_index.items()))
        assert escape.steering.path_for_group(dpid, gid) == path_id
        escape.stop()

    def test_reactive_mode_installs_no_groups(self):
        escape, chain = deploy(topo(DETOUR_LINKS, SWITCHES),
                               protection=False)
        assert escape.steering.protected_paths() == []
        assert escape.steering.group_mods_sent == 0
        escape.stop()

    def test_port_status_event_names_affected_chains(self):
        escape, chain = deploy(topo(DETOUR_LINKS, SWITCHES))
        escape.net.links_between("s1", "s2")[0].set_up(False)
        escape.run(0.2)
        down = escape.telemetry.events.query(name="steering.port_down")
        assert down
        assert "chain" in down[0].tags["chains"].split(",")
        escape.stop()

    def test_flip_repairs_before_control_plane(self):
        escape, chain = deploy(topo(DETOUR_LINKS, SWITCHES))
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        train = h1.ping(h2.ip, count=200, interval=0.01)
        escape.run(0.5)
        escape.net.links_between("s1", "s2")[0].set_up(False)
        escape.run(2.0)
        flips = [a for a in escape.recovery.actions
                 if a["kind"] == "flip"]
        assert flips and flips[0]["mttr"] < 0.05  # beats reaction delay
        reprotects = [a for a in escape.recovery.actions
                      if a["kind"] == "reprotect"]
        assert reprotects and reprotects[0]["mttr"] is None
        assert not escape.recovery.unrecovered()
        assert train.received > 0
        escape.stop()

    def test_reactive_fallback_when_unprotected(self):
        escape, chain = deploy(topo(DETOUR_LINKS, SWITCHES),
                               protection=False)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        h1.ping(h2.ip, count=200, interval=0.01)
        escape.run(0.5)
        escape.net.links_between("s1", "s2")[0].set_up(False)
        escape.run(2.0)
        kinds = {a["kind"] for a in escape.recovery.actions}
        assert "flip" not in kinds and "reprotect" not in kinds
        assert not escape.recovery.unrecovered()
        assert sum(s.datapath.group_flip_count
                   for s in escape.net.switches()) == 0
        escape.stop()


# -- the link_flap chaos primitive --------------------------------------------


class TestLinkFlap:
    def test_parameter_validation(self):
        with pytest.raises(FaultError):
            LinkFlapFault(at=1.0, period=0.0)
        with pytest.raises(FaultError):
            LinkFlapFault(at=1.0, flaps=0)

    def test_describe_includes_cadence(self):
        fault = LinkFlapFault(at=2.0, period=0.25, flaps=4)
        data = fault.describe()
        assert data["kind"] == "link_flap"
        assert data["period"] == 0.25 and data["flaps"] == 4

    def test_flap_timeline_is_deterministic(self):
        escape, chain = deploy(topo(DETOUR_LINKS, SWITCHES),
                               protection=False)
        trunk = escape.net.links_between("s1", "s2")[0]
        fault = LinkFlapFault(at=0.0, period=0.4, flaps=2)
        assert trunk.name in fault.candidates(escape)
        state = fault.inject(escape, trunk.name)
        assert not trunk.up                      # first down: immediate
        escape.run(0.3)
        assert trunk.up                          # back up at 0.2
        escape.run(0.2)
        assert not trunk.up                      # second down at 0.4
        escape.run(0.3)
        assert trunk.up                          # final up at 0.6
        fault.heal(escape, trunk.name, state)
        assert trunk.up
        escape.stop()

    def test_heal_cancels_pending_cycles(self):
        escape, chain = deploy(topo(DETOUR_LINKS, SWITCHES),
                               protection=False)
        trunk = escape.net.links_between("s1", "s2")[0]
        fault = LinkFlapFault(at=0.0, period=1.0, flaps=5)
        state = fault.inject(escape, trunk.name)
        fault.heal(escape, trunk.name, state)
        escape.run(3.0)
        assert trunk.up  # no zombie down events left behind
        escape.stop()

    def test_scenario_engine_accepts_flap_kwargs(self):
        escape, chain = deploy(topo(DETOUR_LINKS, SWITCHES),
                               protection=False)
        engine = escape.inject_chaos({
            "name": "flappy", "seed": 7,
            "faults": [{"kind": "link_flap", "at": 0.1,
                        "period": 0.2, "flaps": 2}],
        })
        escape.run(1.5)
        records = [r for r in engine.injections
                   if r["kind"] == "link_flap"]
        assert records and "skipped" not in records[0]
        escape.stop()
