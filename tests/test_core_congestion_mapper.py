"""Tests for the congestion-aware mapper (monitoring -> mapping loop)."""

import pytest

from repro.core import (CongestionAwareMapper, ESCAPE, ResourceView,
                        ServiceGraph, ShortestPathMapper, default_catalog)
from repro.core.sgfile import load_topology


def diamond_view():
    """h1 -> s1 -> {s2 (fast), s3 (slow)} -> s4 -> h2 with a container
    on each middle switch."""
    view = ResourceView()
    view.add_sap("h1")
    view.add_sap("h2")
    for index, name in enumerate(("s1", "s2", "s3", "s4")):
        view.add_switch(name, index + 1)
    view.add_link("h1", "s1", delay=0.001)
    view.add_link("s1", "s2", delay=0.001, bandwidth=100e6)  # fast leg
    view.add_link("s1", "s3", delay=0.003, bandwidth=100e6)  # slow leg
    view.add_link("s2", "s4", delay=0.001, bandwidth=100e6)
    view.add_link("s3", "s4", delay=0.003, bandwidth=100e6)
    view.add_link("h2", "s4", delay=0.001)
    view.add_container("nc-fast", cpu=4, mem=4096)
    view.add_container("nc-slow", cpu=4, mem=4096)
    view.add_link("nc-fast", "s2", delay=0.0001)
    view.add_link("nc-slow", "s3", delay=0.0001)
    return view


def one_vnf_chain(name="cc-chain"):
    sg = ServiceGraph(name)
    sg.add_sap("h1")
    sg.add_sap("h2")
    sg.add_vnf("v", "forwarder")
    sg.add_chain(["h1", "v", "h2"])
    return sg


class TestCongestionAwareMapper:
    def test_uncongested_behaves_like_shortest_path(self):
        catalog = default_catalog()
        view = diamond_view()
        aware = CongestionAwareMapper(catalog).map(one_vnf_chain(),
                                                   view.copy())
        plain = ShortestPathMapper(catalog).map(one_vnf_chain(),
                                                view.copy())
        assert aware.vnf_placement == plain.vnf_placement == \
            {"v": "nc-fast"}

    def test_routes_around_reserved_bandwidth(self):
        catalog = default_catalog()
        view = diamond_view()
        # saturate the fast leg with reservations
        view.reserve_path_bandwidth(["s1", "s2"], 95e6)
        view.reserve_path_bandwidth(["s2", "s4"], 95e6)
        aware = CongestionAwareMapper(catalog, alpha=10.0)
        mapping = aware.map(one_vnf_chain(), view)
        assert mapping.vnf_placement == {"v": "nc-slow"}

    def test_routes_around_measured_traffic(self):
        """The StatsCollector's measured_bps annotation alone (no
        reservations) diverts placement."""
        catalog = default_catalog()
        view = diamond_view()
        view.graph.edges["s1", "s2"]["measured_bps"] = 95e6
        view.graph.edges["s2", "s4"]["measured_bps"] = 95e6
        aware = CongestionAwareMapper(catalog, alpha=10.0)
        mapping = aware.map(one_vnf_chain(), view)
        assert mapping.vnf_placement == {"v": "nc-slow"}
        # shortest-path ignores the measurement and stays on the hot leg
        plain = ShortestPathMapper(catalog).map(one_vnf_chain("p"),
                                                diamond_view())
        assert plain.vnf_placement == {"v": "nc-fast"}

    def test_alpha_zero_ignores_congestion(self):
        catalog = default_catalog()
        view = diamond_view()
        view.graph.edges["s1", "s2"]["measured_bps"] = 95e6
        indifferent = CongestionAwareMapper(catalog, alpha=0.0)
        mapping = indifferent.map(one_vnf_chain(), view)
        assert mapping.vnf_placement == {"v": "nc-fast"}

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            CongestionAwareMapper(default_catalog(), alpha=-1.0)

    def test_respects_hard_bandwidth_constraints(self):
        from repro.core import MappingError
        catalog = default_catalog()
        view = diamond_view()
        sg = one_vnf_chain()
        sg.links[0].bandwidth = 200e6  # more than any leg offers
        with pytest.raises(MappingError):
            CongestionAwareMapper(catalog).map(sg, view)


class TestEndToEndLoop:
    """Monitoring -> annotation -> mapping: the full closed loop."""

    TOPOLOGY = {
        "nodes": [
            {"name": "h1", "role": "host"},
            {"name": "h2", "role": "host"},
            {"name": "s1", "role": "switch"},
            {"name": "s2", "role": "switch"},
            {"name": "nc1", "role": "vnf_container", "cpu": 4,
             "mem": 2048},
        ],
        "links": [
            {"from": "h1", "to": "s1", "bandwidth": 100e6,
             "delay": 0.001},
            {"from": "s1", "to": "s2", "bandwidth": 100e6,
             "delay": 0.001},
            {"from": "h2", "to": "s2", "bandwidth": 100e6,
             "delay": 0.001},
            {"from": "nc1", "to": "s1", "delay": 0.0005},
            {"from": "nc1", "to": "s1", "delay": 0.0005},
        ],
    }

    def test_registered_in_escape(self):
        escape = ESCAPE.from_topology(load_topology(self.TOPOLOGY))
        assert "congestion-aware" in escape.mappers

    def test_deploy_with_congestion_aware(self):
        escape = ESCAPE.from_topology(load_topology(self.TOPOLOGY))
        escape.start()
        sg = {
            "name": "ca-chain",
            "saps": ["h1", "h2"],
            "vnfs": [{"name": "fw", "type": "firewall",
                      "params": {"rules": "allow all"}}],
            "chain": ["h1", "fw", "h2"],
        }
        chain = escape.deploy_service(sg, mapper="congestion-aware")
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        result = h1.ping(h2.ip, count=3, interval=0.2)
        escape.run(2.0)
        assert result.received == 3
        chain.undeploy()

    def test_measured_rates_feed_the_mapper(self):
        escape = ESCAPE.from_topology(load_topology(self.TOPOLOGY))
        escape.start()
        escape.run(1.5)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        h1.start_udp_flow(h2.ip, 5001, rate_pps=300, duration=2.0,
                          payload_size=800)
        escape.run(1.5)
        escape.stats.annotate_view(escape.orchestrator.view, escape.net)
        spine = escape.orchestrator.view.graph.edges["s1", "s2"]
        assert spine.get("measured_bps", 0.0) > 0
        # the congestion-aware weight of the hot link now exceeds a
        # plain delay weight
        mapper = escape.mappers["congestion-aware"]
        weight = mapper._edge_weight(escape.orchestrator.view, "s1",
                                     "s2")
        assert weight > spine["delay"]
