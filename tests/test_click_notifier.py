"""Tests for the event-driven pull path: Click-style notifiers.

PR 7's dispatch accounting measured the timer storm (97%+ of all
events were ``_PullDriver._fire`` polls); this suite pins the fix —
queues own an empty-note :class:`Notifier`, pass-through pull elements
forward it, and pull drivers sleep on empty upstreams instead of
polling.  The determinism tests are the hard constraint: the same seed
must produce the same scenario bundle whether or not dispatch
accounting observes the run.
"""

import json

import pytest

from repro.click import ClickPacket, Router
from repro.click.element import Notifier
from repro.click.elements.device import Device
from repro.scenario import run_scenario
from repro.sim import Simulator


def packet(data=b"payload"):
    return ClickPacket(data)


def started(config, sim=None):
    router = Router.from_config(config, sim=sim or Simulator())
    router.start()
    return router


class TestNotifierPrimitive:
    def test_edge_triggered_wake(self):
        notifier = Notifier()
        fired = []
        notifier.listen(lambda: fired.append(1))
        assert not notifier.active
        notifier.wake()
        assert notifier.active
        notifier.wake()  # already active: no second edge
        assert fired == [1]

    def test_sleep_then_wake_fires_again(self):
        notifier = Notifier()
        fired = []
        notifier.listen(lambda: fired.append(1))
        notifier.wake()
        notifier.sleep()
        assert not notifier.active
        notifier.wake()
        assert fired == [1, 1]

    def test_unlisten(self):
        notifier = Notifier()
        fired = []
        callback = lambda: fired.append(1)  # noqa: E731
        notifier.listen(callback)
        notifier.unlisten(callback)
        notifier.wake()
        assert fired == []


class TestQueueTransitions:
    def test_queue_wakes_on_zero_to_one_push(self):
        router = Router.from_config(
            "Idle -> q :: Queue(10); q -> Unqueue -> Discard;")
        queue = router.element("q")
        edges = []
        queue.notifier.listen(lambda: edges.append(len(queue.buffer)))
        queue.push(0, packet())
        queue.push(0, packet())  # 1→2: no edge
        assert edges == [1]
        assert queue.notifier.active

    def test_queue_sleeps_when_pull_drains(self):
        router = Router.from_config(
            "Idle -> q :: Queue(10); q -> Unqueue -> Discard;")
        queue = router.element("q")
        queue.push(0, packet())
        queue.push(0, packet())
        assert queue.notifier.active
        queue.pull(0)
        assert queue.notifier.active  # one left
        queue.pull(0)
        assert not queue.notifier.active  # drained → empty-note

    def test_empty_pull_returns_none_keeps_inactive(self):
        router = Router.from_config(
            "Idle -> q :: Queue(10); q -> Unqueue -> Discard;")
        queue = router.element("q")
        assert queue.pull(0) is None
        assert not queue.notifier.active

    def test_front_drop_queue_wakes_too(self):
        router = Router.from_config(
            "Idle -> q :: FrontDropQueue(2); q -> Unqueue -> Discard;")
        queue = router.element("q")
        edges = []
        queue.notifier.listen(lambda: edges.append(1))
        for _ in range(4):  # overflows head-drop, stays non-empty
            queue.push(0, packet())
        assert edges == [1]
        assert queue.notifier.active

    def test_queue_full_rejects_push_hint(self):
        router = Router.from_config(
            "Idle -> q :: Queue(2); q -> Unqueue -> Discard;")
        queue = router.element("q")
        assert queue.accepts_push(0)
        queue.push(0, packet())
        queue.push(0, packet())
        assert not queue.accepts_push(0)


class TestNotifierForwarding:
    def test_shaper_forwards_queue_notifier(self):
        router = Router.from_config(
            "Idle -> q :: Queue(10);"
            " q -> sh :: Shaper(1000) -> u :: Unqueue -> Discard;")
        queue, shaper, unqueue = (router.element(name)
                                  for name in ("q", "sh", "u"))
        assert shaper.output_notifier(0) is queue.notifier
        assert unqueue.input_notifier(0) is queue.notifier

    def test_bandwidth_shaper_forwards_queue_notifier(self):
        router = Router.from_config(
            "Idle -> q :: Queue(10);"
            " q -> sh :: BandwidthShaper(10000)"
            " -> u :: Unqueue -> Discard;")
        queue, unqueue = router.element("q"), router.element("u")
        assert unqueue.input_notifier(0) is queue.notifier

    def test_counter_forwards_on_pull_path(self):
        router = Router.from_config(
            "Idle -> q :: Queue(10);"
            " q -> c :: Counter -> u :: Unqueue -> Discard;")
        queue, unqueue = router.element("q"), router.element("u")
        assert unqueue.input_notifier(0) is queue.notifier

    def test_shaper_hint_is_next_allowed(self):
        router = started(
            "Idle -> q :: Queue(10);"
            " q -> sh :: Shaper(10) -> u :: Unqueue -> Discard;")
        shaper = router.element("sh")
        queue = router.element("q")
        queue.push(0, packet())
        first = shaper.pull(0)
        assert first is not None
        # rate 10/s: the gate reopens exactly 0.1s later
        hint = shaper.pull_hint(0)
        assert hint == pytest.approx(router.sim.now + 0.1)

    def test_delay_queue_hint_is_head_ready_time(self):
        router = started(
            "Idle -> dq :: DelayQueue(0.25);"
            " dq -> u :: Unqueue -> Discard;")
        delay_queue = router.element("dq")
        assert delay_queue.pull_hint(0) is None  # empty: no constraint
        delay_queue.push(0, packet())
        assert delay_queue.notifier.active
        assert delay_queue.pull_hint(0) == pytest.approx(
            router.sim.now + 0.25)


class TestDriverSleepWake:
    def test_idle_unqueue_dispatches_no_events(self):
        """The tentpole: a parked driver costs zero events, not a
        100kHz poll storm."""
        sim = Simulator()
        router = started(
            "Idle -> q :: Queue(10); q -> Unqueue -> Discard;", sim=sim)
        before = sim.processed
        sim.run(until=1.0)
        assert sim.processed - before == 0
        router.stop()

    def test_unqueue_wakes_on_push_and_drains(self):
        sim = Simulator()
        router = started(
            "Idle -> q :: Queue(10);"
            " q -> Unqueue -> c :: Counter -> Discard;", sim=sim)
        queue = router.element("q")
        sim.run(until=0.5)
        for _ in range(3):
            queue.push(0, packet())
        sim.run(until=1.0)
        assert router.read_handler("c.count") == "3"
        assert not queue.notifier.active  # drained → parked again
        assert sim.accounting.wakeups > 0

    def test_unqueue_burst_continuation_is_packet_train(self):
        """More backlog than one burst: the driver re-arms at the same
        timestamp (continuation shots) instead of one event per tick."""
        sim = Simulator()
        router = started(
            "Idle -> q :: Queue(100);"
            " q -> Unqueue(BURST 4) -> c :: Counter -> Discard;",
            sim=sim)
        queue = router.element("q")
        sim.run(until=0.25)
        for _ in range(10):
            queue.push(0, packet())
        started_at = sim.now
        events_before = sim.processed
        sim.run(until=1.0)
        assert router.read_handler("c.count") == "10"
        # ceil(10/4) = 3 activations, all at the push instant
        assert sim.processed - events_before == 3
        drained_at = started_at  # continuation shots share the stamp
        assert sim.now >= drained_at

    def test_rated_unqueue_parks_then_resumes_at_rate(self):
        sim = Simulator()
        router = started(
            "Idle -> q :: Queue(100);"
            " q -> RatedUnqueue(RATE 100) -> c :: Counter -> Discard;",
            sim=sim)
        queue = router.element("q")
        sim.run(until=0.5)
        assert sim.processed == 0  # parked, no credit ticks
        for _ in range(50):
            queue.push(0, packet())
        sim.run(until=0.6)
        # 0.1s at 100/s: the first pull fires on wake, then one per
        # credit instant
        count = int(router.read_handler("c.count"))
        assert 10 <= count <= 12
        sim.run(until=2.0)
        assert router.read_handler("c.count") == "50"
        assert sim.pending == 0  # drained → parked, heap empty

    def test_rated_unqueue_idle_spell_earns_no_catchup_burst(self):
        sim = Simulator()
        router = started(
            "Idle -> q :: Queue(100);"
            " q -> RatedUnqueue(RATE 10) -> c :: Counter -> Discard;",
            sim=sim)
        queue = router.element("q")
        sim.run(until=1.0)  # a long idle spell accrues no credit
        for _ in range(10):
            queue.push(0, packet())
        sim.run(until=1.35)
        # wake fires one immediately, then 10/s — not a burst of 10
        assert int(router.read_handler("c.count")) <= 5

    def test_to_device_sleeps_and_wakes(self):
        sim = Simulator()
        router = Router.from_config(
            "Idle -> q :: Queue(10) -> ToDevice(eth0);", sim=sim)
        device = Device("eth0")
        sent = []
        device.transmit = sent.append
        router.device_map = {"eth0": device}
        router.start()
        sim.run(until=1.0)
        assert sim.processed == 0  # parked on the empty queue
        queue = router.element("q")
        for index in range(3):
            queue.push(0, packet(b"frame-%d" % index))
        sim.run(until=2.0)
        assert sent == [b"frame-0", b"frame-1", b"frame-2"]

    def test_discard_pull_mode_sleeps(self):
        sim = Simulator()
        router = started(
            "Idle -> q :: Queue(10); q -> d :: Discard;", sim=sim)
        sim.run(until=1.0)
        assert sim.processed == 0
        router.element("q").push(0, packet())
        sim.run(until=2.0)
        assert router.read_handler("d.count") == "1"

    def test_shaped_chain_uses_exact_hint_shots(self):
        """A driver blocked by a Shaper fires at the rate gate's hint,
        not every poll tick: draining 5 packets at 10/s costs events
        of the order of the packet count, not duration/interval."""
        sim = Simulator()
        router = started(
            "Idle -> q :: Queue(100);"
            " q -> Shaper(10) -> u :: Unqueue"
            " -> c :: Counter -> Discard;", sim=sim)
        queue = router.element("q")
        for _ in range(5):
            queue.push(0, packet())
        events_before = sim.processed
        sim.run(until=1.0)
        assert router.read_handler("c.count") == "5"
        used = sim.processed - events_before
        assert used <= 15, "hint shots degenerated into polling: %d" % used
        assert sim.accounting.wakeups > 0

    def test_wakeups_and_polls_counters_always_on(self):
        sim = Simulator()
        assert not sim.accounting.enabled
        router = started(
            "Idle -> q :: Queue(10); q -> Unqueue -> Discard;", sim=sim)
        router.element("q").push(0, packet())
        sim.run(until=0.5)
        assert sim.accounting.wakeups >= 1
        report = sim.accounting.report()
        assert "wakeups" in report and "polls" in report


class TestSourceBackpressure:
    def test_source_suppresses_into_full_queue(self):
        sim = Simulator()
        router = started(
            "src :: RatedSource(RATE 1000)"
            " -> q :: Queue(5);"
            " q -> RatedUnqueue(RATE 10) -> Discard;", sim=sim)
        sim.run(until=1.0)
        source = router.element("src")
        queue = router.element("q")
        assert source.suppressed > 0
        assert int(router.read_handler("src.suppressed")) == \
            source.suppressed
        assert queue.drops == 0  # nothing synthesized just to tail-drop

    def test_source_resumes_after_drain(self):
        sim = Simulator()
        router = started(
            "src :: TimedSource(INTERVAL 0.01, LIMIT 20)"
            " -> q :: Queue(50);"
            " q -> Unqueue -> c :: Counter -> Discard;", sim=sim)
        sim.run(until=1.0)
        assert router.read_handler("c.count") == "20"
        assert router.element("src").suppressed == 0

    def test_front_drop_queue_accepts_everything(self):
        sim = Simulator()
        router = started(
            "src :: TimedSource(INTERVAL 0.001, LIMIT 10)"
            " -> q :: FrontDropQueue(3);"
            " q -> RatedUnqueue(RATE 1) -> Discard;", sim=sim)
        sim.run(until=0.5)
        # head-drop is the element's *intended* behavior: the source
        # must not suppress into it
        assert router.element("src").suppressed == 0


FATTREE_SMOKE = {
    "name": "notifier-determinism",
    "duration": 2.0,
    "seeds": [7],
    "topology": {"kind": "fat_tree", "k": 2, "containers_per_pod": 1,
                 "container_ports": 4},
    "chains": {"count": 1, "templates": ["shaped"]},
    "workload": {"subscribers_per_sap": 50, "flows_per_subscriber": 0.05,
                 "flow_rate_pps": 100, "flow_duration": 0.2,
                 "max_flows": 6},
    "sla": {"max_delay": 0.1},
}

# observer- or host-speed-dependent sections: wall-clock timings, the
# telemetry snapshot (self-overhead gauges measure the host, and the
# sim.* dispatch gauges measure the *observer*, which this test
# toggles).  Everything else in a bundle is driven by the sim clock
# and the seed alone.
NONDETERMINISTIC_KEYS = ("wall_seconds", "throughput", "calibration_s",
                         "dispatch", "profiler", "events", "metrics")


def deterministic_view(bundle):
    view = {key: value for key, value in bundle.items()
            if key not in NONDETERMINISTIC_KEYS}
    for key, value in view.items():
        # the bundle echoes the scenario spec; its observer toggles
        # (accounting/profile) are the very thing the toggle test
        # flips, so mask them while keeping the rest of the echo
        if isinstance(value, dict) and "accounting" in value:
            view[key] = {k: v for k, v in value.items()
                         if k not in ("accounting", "profile")}
    return view


class TestDeterminism:
    def test_same_seed_bundle_byte_identical_with_accounting_toggle(self):
        """The hard constraint: observing the run (dispatch accounting
        on/off) must not perturb the simulated schedule — same seed,
        byte-identical deterministic bundle either way."""
        with_acct = run_scenario(dict(FATTREE_SMOKE), write=False)[0]
        without = run_scenario(dict(FATTREE_SMOKE, accounting=False),
                               write=False)[0]
        assert "dispatch" in with_acct and "dispatch" not in without
        assert json.dumps(deterministic_view(with_acct),
                          sort_keys=True) == \
            json.dumps(deterministic_view(without), sort_keys=True)

    def test_same_seed_twice_is_byte_identical(self):
        one = run_scenario(dict(FATTREE_SMOKE), write=False)[0]
        two = run_scenario(dict(FATTREE_SMOKE), write=False)[0]
        assert json.dumps(deterministic_view(one), sort_keys=True) == \
            json.dumps(deterministic_view(two), sort_keys=True)

    def test_pull_driver_no_longer_top_dispatch_kind(self):
        """ROADMAP item 1's acceptance: the pull-driver poll storm is
        gone from the fat-tree dispatch table."""
        bundle = run_scenario(dict(FATTREE_SMOKE), write=False)[0]
        kinds = bundle["dispatch"]["kinds"]
        assert kinds
        top = max(kinds.items(), key=lambda kv: kv[1]["self_s"])[0]
        assert "_PullDriver" not in top and "_fire" not in top
        # wakeup-driven fires may still appear as a kind; the *storm*
        # is what must be gone — its event count stays within a small
        # multiple of the packets actually moved, not duration/interval
        storm = kinds.get("click.elements.queues._PullDriver._fire")
        if storm is not None:
            moved = bundle["workload"]["packets_received"]
            assert storm["count"] <= max(50, 4 * moved)
