"""Tests for the ESCAPE-level CLI commands."""

import json

import pytest

from repro.core import ESCAPE
from repro.core.sgfile import load_topology

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 4, "mem": 2048},
        {"name": "nc2", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "h2", "to": "s1", "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc2", "to": "s1", "delay": 0.0005},
        {"from": "nc2", "to": "s1", "delay": 0.0005},
    ],
}

SG = {
    "name": "cli-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow all"}}],
    "chain": ["h1", "fw", "h2"],
}


@pytest.fixture
def console(tmp_path):
    escape = ESCAPE.from_topology(load_topology(TOPOLOGY))
    escape.start()
    sg_file = tmp_path / "sg.json"
    sg_file.write_text(json.dumps(SG))
    return escape, escape.cli(), str(sg_file)


class TestServiceCommands:
    def test_services_empty(self, console):
        _escape, cli, _sg = console
        assert "no services" in cli.run_command("services")

    def test_deploy_from_file(self, console):
        _escape, cli, sg_path = console
        output = cli.run_command("deploy %s" % sg_path)
        assert "deployed cli-chain" in output
        assert "fw" in output
        assert "cli-chain" in cli.run_command("services")

    def test_deploy_with_mapper(self, console):
        escape, cli, sg_path = console
        cli.run_command("deploy %s backtracking" % sg_path)
        chain = escape.service_layer.services["cli-chain"]
        assert chain.mapper.name == "backtracking"

    def test_undeploy(self, console):
        _escape, cli, sg_path = console
        cli.run_command("deploy %s" % sg_path)
        assert "undeployed" in cli.run_command("undeploy cli-chain")
        assert "no services" in cli.run_command("services")

    def test_undeploy_unknown_is_error(self, console):
        _escape, cli, _sg = console
        assert "Error" in cli.run_command("undeploy ghost")

    def test_migrate(self, console):
        escape, cli, sg_path = console
        cli.run_command("deploy %s" % sg_path)
        chain = escape.service_layer.services["cli-chain"]
        source = chain.mapping.vnf_placement["fw"]
        target = "nc2" if source == "nc1" else "nc1"
        output = cli.run_command("migrate cli-chain fw %s" % target)
        assert "migrated" in output
        assert chain.mapping.vnf_placement["fw"] == target

    def test_migrate_unknown_service(self, console):
        _escape, cli, _sg = console
        assert "no service" in cli.run_command("migrate ghost fw nc1")

    def test_topology_verification(self, console):
        escape, cli, _sg = console
        escape.run(2.0)
        assert "verified" in cli.run_command("topology")

    def test_catalog_listing(self, console):
        _escape, cli, _sg = console
        output = cli.run_command("catalog")
        assert "firewall" in output
        assert "rules" in output

    def test_vnfs_shows_deployed(self, console):
        _escape, cli, sg_path = console
        cli.run_command("deploy %s" % sg_path)
        assert "UP" in cli.run_command("vnfs")

    def test_help_includes_service_commands(self, console):
        _escape, cli, _sg = console
        output = cli.run_command("help")
        assert "deploy" in output
        assert "migrate" in output

    def test_status_command_is_json(self, console):
        import json as json_module
        _escape, cli, sg_path = console
        cli.run_command("deploy %s" % sg_path)
        output = cli.run_command("status")
        parsed = json_module.loads(output)
        assert parsed["services"]["cli-chain"]["active"] is True


class TestProfilingCommands:
    def _profiled_traffic(self, escape, cli, sg_path):
        cli.run_command("profile on")
        cli.run_command("deploy %s" % sg_path)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        h1.start_udp_flow(h2.ip, 5001, rate_pps=200, duration=0.5,
                          payload_size=100)
        escape.run(1.0)

    def test_profile_toggles_and_reports(self, console):
        escape, cli, sg_path = console
        assert "profiler is off" in cli.run_command("profile")
        assert "enabled" in cli.run_command("profile on")
        assert escape.profiler.enabled
        self._profiled_traffic(escape, cli, sg_path)
        report = cli.run_command("profile")
        assert "sim.event.dispatch" in report
        assert "core.mapping.solve" in report
        assert "disabled" in cli.run_command("profile off")
        assert not escape.profiler.enabled
        cli.run_command("profile reset")
        assert escape.profiler.stats == {}
        assert "usage" in cli.run_command("profile bogus")

    def test_top_limits_rows(self, console):
        escape, cli, sg_path = console
        assert "no profile data" in cli.run_command("top")
        self._profiled_traffic(escape, cli, sg_path)
        lines = cli.run_command("top 2").splitlines()
        # header + 2 regions + overhead footer
        assert len(lines) == 4
        assert "usage" in cli.run_command("top many")

    def test_flame_prints_and_writes_collapsed_stacks(self, console,
                                                      tmp_path):
        escape, cli, sg_path = console
        assert "no profile data" in cli.run_command("flame")
        self._profiled_traffic(escape, cli, sg_path)
        text = cli.run_command("flame")
        assert any(line.startswith("sim.event.dispatch;")
                   for line in text.splitlines())
        target = tmp_path / "flames" / "demo.folded"
        output = cli.run_command("flame %s" % target)
        assert "wrote" in output
        content = target.read_text().splitlines()
        assert content and all(
            line.rsplit(" ", 1)[1].isdigit() for line in content)

    def test_series_lists_and_queries(self, console):
        escape, cli, sg_path = console
        names = cli.run_command("series")
        assert "netem.link.delivered" in names
        self._profiled_traffic(escape, cli, sg_path)
        output = cli.run_command("series netem.link.delivered")
        assert "point(s)" in output
        assert "latest=" in output and "rate=" in output
        windowed = cli.run_command("series netem.link.delivered 0.5")
        assert "in last 0.500s" in windowed
        assert "no metric" in cli.run_command("series no.such.metric")
        assert "usage" in cli.run_command(
            "series netem.link.delivered soon")

    def test_help_includes_profiling_commands(self, console):
        _escape, cli, _sg = console
        output = cli.run_command("help")
        for command in ("profile", "flame", "top", "series"):
            assert command in output
