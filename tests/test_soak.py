"""Soak tests: sustained deploy/undeploy churn and many concurrent
chains — nothing may leak (resources, flows, VNFs, steering state)."""

import json

import pytest

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology


def big_topology(containers=4, ports=12):
    nodes = [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
    ]
    links = [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.001},
        {"from": "h2", "to": "s2", "delay": 0.001},
    ]
    for index in range(containers):
        name = "nc%d" % index
        nodes.append({"name": name, "role": "vnf_container",
                      "cpu": 16, "mem": 16384})
        switch = "s1" if index % 2 == 0 else "s2"
        links.extend({"from": name, "to": switch, "delay": 0.0005}
                     for _ in range(ports))
    return load_topology({"nodes": nodes, "links": links})


def chain_sg(name, length=1):
    vnfs = ["v%d" % index for index in range(length)]
    return load_service_graph({
        "name": name,
        "saps": ["h1", "h2"],
        "vnfs": [{"name": vnf, "type": "forwarder"} for vnf in vnfs],
        "chain": ["h1"] + vnfs + ["h2"],
    })


class TestChurn:
    def test_fifty_deploy_undeploy_cycles_leave_no_residue(self):
        escape = ESCAPE.from_topology(big_topology())
        escape.start()
        baseline = escape.status()
        for cycle in range(50):
            chain = escape.deploy_service(chain_sg("churn-%d" % cycle, 2))
            chain.undeploy()
            escape.service_layer.services.pop("churn-%d" % cycle, None)
        after = escape.status()
        assert after["steering_paths"] == 0
        assert after["services"] == {}
        for name, info in after["containers"].items():
            assert info["vnfs"] == []
            assert info["cpu_used"] == pytest.approx(0.0)
            assert info["free_interfaces"] \
                == baseline["containers"][name]["free_interfaces"]
        steering_flows = [
            entry for switch in escape.net.switches()
            for entry in switch.datapath.table.entries
            if entry.priority >= 0x6000]
        assert steering_flows == []

    def test_many_concurrent_chains(self):
        escape = ESCAPE.from_topology(big_topology(containers=6,
                                                   ports=16))
        escape.start()
        chains = []
        deployed = 0
        for index in range(40):
            try:
                chains.append(escape.deploy_service(
                    chain_sg("many-%d" % index)))
                deployed += 1
            except Exception:
                break  # substrate full: acceptable stopping point
        assert deployed >= 20
        # traffic still flows through the environment
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        result = h1.ping(h2.ip, count=2, interval=0.2)
        escape.run(2.0)
        assert result.received == 2
        for chain in chains:
            chain.undeploy()
        assert escape.status()["steering_paths"] == 0

    def test_churn_with_migration_mix(self):
        escape = ESCAPE.from_topology(big_topology())
        escape.start()
        containers = [c.name for c in escape.net.vnf_containers()]
        for cycle in range(10):
            chain = escape.deploy_service(chain_sg("mix-%d" % cycle))
            placed = chain.mapping.vnf_placement["v0"]
            target = next(name for name in containers if name != placed)
            chain.migrate("v0", target)
            chain.undeploy()
            escape.service_layer.services.pop("mix-%d" % cycle, None)
        status = escape.status()
        for info in status["containers"].values():
            assert info["vnfs"] == []
            assert info["cpu_used"] == pytest.approx(0.0)


class TestStatus:
    def test_status_is_json_serializable(self):
        escape = ESCAPE.from_topology(big_topology(containers=2))
        escape.start()
        escape.deploy_service(chain_sg("status-chain"))
        blob = json.dumps(escape.status())
        parsed = json.loads(blob)
        assert parsed["services"]["status-chain"]["active"] is True
        assert parsed["switches"]["s1"]["connected"] is True

    def test_status_reflects_lifecycle(self):
        escape = ESCAPE.from_topology(big_topology(containers=2))
        escape.start()
        chain = escape.deploy_service(chain_sg("lifecycle"))
        mid = escape.status()
        assert mid["steering_paths"] > 0
        placed = chain.mapping.vnf_placement["v0"]
        assert mid["containers"][placed]["cpu_used"] > 0
        chain.undeploy()
        done = escape.status()
        assert done["steering_paths"] == 0
        assert done["containers"][placed]["cpu_used"] \
            == pytest.approx(0.0)
