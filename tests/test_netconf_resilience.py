"""NETCONF client hardening: deadlines, retries, reconnects.

The chaos scenarios lean on these properties: a timed-out RPC raises
exactly once and deregisters (its late reply is counted, never
resolved), retries back off exponentially, and a dead session can be
re-dialed through a transport factory.
"""

import xml.etree.ElementTree as ET

import pytest

from repro.netconf import (NetconfClient, NetconfServer, RpcError,
                           RpcTimeout, SessionError, TransportPair)
from repro.netconf import messages as nc
from repro.sim import Simulator
from repro.telemetry import current as current_telemetry


def element(tag, text=None, ns="urn:test"):
    node = ET.Element(nc.qn(tag, ns))
    if text is not None:
        node.text = text
    return node


def connected_pair(sim=None, **server_kwargs):
    sim = sim or Simulator()
    pair = TransportPair(sim, latency=0.001)
    server = NetconfServer(pair.server, **server_kwargs)
    client = NetconfClient(pair.client)
    client.wait_connected()
    sim.run(until=sim.now + 0.1)
    return sim, server, client


def metric_value(name):
    metric = current_telemetry().metrics.get(name)
    return metric.value if metric is not None else 0


class TestRpcTimeout:
    def test_timeout_raises_and_deregisters(self):
        sim, _server, client = connected_pair()
        client.transport.blackhole = True
        before = metric_value("netconf.client.rpc_timeouts")
        pending = client.get()
        with pytest.raises(RpcTimeout):
            pending.result(sim, timeout=0.5)
        assert pending.message_id not in client._pending
        assert metric_value("netconf.client.rpc_timeouts") == before + 1

    def test_timeout_raises_exactly_once(self):
        sim, _server, client = connected_pair()
        client.transport.blackhole = True
        pending = client.get()
        with pytest.raises(RpcTimeout):
            pending.result(sim, timeout=0.5)
        # the handle stays failed; a second read raises the same error
        with pytest.raises(RpcTimeout):
            pending.result(sim, timeout=0.5)

    def test_late_reply_counted_not_resolved(self):
        """The reply crawls in after the deadline: it must not resolve
        the dead handle, only bump the late-reply counter."""
        sim, _server, client = connected_pair()
        client.transport.peer.fault_latency = 2.0  # slow server->client
        before = metric_value("netconf.client.late_replies")
        pending = client.get()
        with pytest.raises(RpcTimeout):
            pending.result(sim, timeout=0.5)
        sim.run(until=sim.now + 5.0)  # the reply lands now
        assert pending.reply is None
        assert pending.error is not None
        assert metric_value("netconf.client.late_replies") == before + 1

    def test_default_timeout_expires_event_driven_rpcs(self):
        sim = Simulator()
        pair = TransportPair(sim, latency=0.001)
        NetconfServer(pair.server)
        client = NetconfClient(pair.client, default_timeout=0.5)
        client.wait_connected()
        sim.run(until=sim.now + 0.1)
        client.transport.blackhole = True
        pending = client.get()  # nobody calls result()
        sim.run(until=sim.now + 2.0)
        assert pending.done
        assert isinstance(pending.error, RpcTimeout)
        assert pending.message_id not in client._pending

    def test_fast_rpc_unaffected_by_deadline(self):
        sim, _server, client = connected_pair()
        reply = client.get().result(sim, timeout=5.0)
        assert reply is not None


class TestRetry:
    def test_retry_succeeds_after_transient_blackhole(self):
        sim, server, client = connected_pair()
        client.transport.blackhole = True
        # heal the pipe while the first attempt is timing out
        sim.schedule(0.7, setattr, client.transport, "blackhole", False)
        reply = client.call_with_retry(nc.build_get(), timeout=0.5,
                                       retries=3, backoff=0.25)
        assert reply is not None
        assert client.rpcs_sent >= 2

    def test_retries_exhausted_raises_last_error(self):
        sim, _server, client = connected_pair()
        client.transport.blackhole = True
        with pytest.raises(RpcTimeout):
            client.call_with_retry(nc.build_get(), timeout=0.2,
                                   retries=2, backoff=0.05)

    def test_rpc_error_is_final_no_retry(self):
        sim, server, client = connected_pair()

        def boom(_operation):
            raise RpcError(message="nope")

        server.register_rpc("boom", boom)
        sent_before = client.rpcs_sent
        with pytest.raises(RpcError):
            client.call_with_retry(element("boom"), timeout=1.0,
                                   retries=3)
        assert client.rpcs_sent == sent_before + 1  # exactly one try

    def test_backoff_is_exponential(self):
        sim, _server, client = connected_pair()
        client.transport.blackhole = True
        sent_before = client.rpcs_sent
        start = sim.now
        with pytest.raises(RpcTimeout):
            client.call_with_retry(nc.build_get(), timeout=0.1,
                                   retries=2, backoff=0.2,
                                   backoff_factor=2.0)
        assert client.rpcs_sent == sent_before + 3  # 1 try + 2 retries
        # blackholed attempts expire without advancing the clock; the
        # elapsed time is the backoff sleeps: 0.2 + 0.4
        assert sim.now - start >= 0.6 - 1e-9


class TestReconnect:
    def _factory_pair(self):
        sim = Simulator()
        holder = {}

        def factory():
            pair = TransportPair(sim, latency=0.001)
            holder["server"] = NetconfServer(pair.server)
            return pair.client

        client = NetconfClient(factory())
        client.set_transport_factory(factory)
        client.wait_connected()
        sim.run(until=sim.now + 0.1)
        return sim, holder, client

    def test_reconnect_establishes_fresh_session(self):
        sim, holder, client = self._factory_pair()
        old_transport = client.transport
        client.reconnect()
        assert client.transport is not old_transport
        assert client.connected
        assert client.reconnects == 1
        assert client.get().result(sim) is not None

    def test_reconnect_fails_inflight_rpcs(self):
        sim, _holder, client = self._factory_pair()
        client.transport.blackhole = True
        pending = client.get()
        client.reconnect()
        assert pending.done
        assert isinstance(pending.error, SessionError)

    def test_reconnect_without_factory_raises(self):
        _sim, _server, client = connected_pair()
        with pytest.raises(SessionError):
            client.reconnect()

    def test_retry_reconnects_dead_session(self):
        sim, holder, client = self._factory_pair()
        client.closed = True  # the session died (e.g. agent restart)
        reply = client.call_with_retry(nc.build_get(), timeout=1.0)
        assert reply is not None
        assert client.reconnects == 1
