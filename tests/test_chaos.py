"""repro.chaos: deterministic fault injection + self-healing recovery.

End-to-end over a topology with a detour path (s1-s3-s2) and two VNF
containers, so every recovery strategy is reachable: restart-in-place,
re-route, failover and zombie reaping.
"""

import json

import pytest

from repro.chaos import (ChaosEngine, ChaosScenario, FAULT_KINDS,
                         FaultError, LinkDownFault)
from repro.core import (CHAIN_FAILED, CHAIN_HEALTHY, ESCAPE,
                        OrchestratorError)
from repro.core.sgfile import load_service_graph, load_topology
from repro.netem.vnf import FAILED as VNF_FAILED

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "s3", "role": "switch"},  # the detour path
        {"name": "c1", "role": "vnf_container", "cpu": 4, "mem": 4096},
        {"name": "c2", "role": "vnf_container", "cpu": 4, "mem": 4096},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "h2", "to": "s2", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.002},   # primary trunk
        {"from": "s1", "to": "s3", "delay": 0.003},
        {"from": "s3", "to": "s2", "delay": 0.003},
        {"from": "c1", "to": "s1", "delay": 0.0005},
        {"from": "c1", "to": "s1", "delay": 0.0005},
        {"from": "c2", "to": "s2", "delay": 0.0005},
        {"from": "c2", "to": "s2", "delay": 0.0005},
    ],
}

NO_DETOUR_TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "c1", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "h2", "to": "s2", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.002},
        {"from": "c1", "to": "s1", "delay": 0.0005},
        {"from": "c1", "to": "s1", "delay": 0.0005},
    ],
}


def simple_sg(name="chaos-chain"):
    return load_service_graph({
        "name": name,
        "saps": ["h1", "h2"],
        "vnfs": [{"name": "fw", "type": "firewall",
                  "params": {"rules": "allow all"}}],
        "chain": ["h1", "fw", "h2"],
    })


def fresh_escape(topology=TOPOLOGY):
    framework = ESCAPE.from_topology(load_topology(topology))
    framework.start()
    return framework


@pytest.fixture
def escape():
    return fresh_escape()


def deploy(escape, name="chaos-chain"):
    return escape.deploy_service(simple_sg(name), mapper="shortest-path")


def ping_ok(escape, count=5):
    h1, h2 = escape.net.get("h1"), escape.net.get("h2")
    train = h1.ping(h2.ip, count=count, interval=0.1)
    escape.run(count * 0.1 + 1.0)
    return train.received


def trunk_link(escape):
    return escape.net.links_between("s1", "s2")[0]


# -- scenario parsing ---------------------------------------------------------

class TestScenarioParsing:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            ChaosScenario.from_dict({
                "faults": [{"kind": "meteor_strike", "at": 1.0}]})

    def test_missing_at_rejected(self):
        with pytest.raises(FaultError):
            ChaosScenario.from_dict({
                "faults": [{"kind": "link_down"}]})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(FaultError):
            ChaosScenario.from_dict({
                "faults": [{"kind": "link_down", "at": 1.0, "bogus": 7}]})

    def test_missing_faults_rejected(self):
        with pytest.raises(FaultError):
            ChaosScenario.from_dict({"name": "empty"})

    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            LinkDownFault(at=-1.0)

    def test_degrade_without_knobs_rejected(self):
        with pytest.raises(FaultError):
            ChaosScenario.from_dict({
                "faults": [{"kind": "link_degrade", "at": 1.0}]})

    def test_random_target_resolves_to_none(self):
        scenario = ChaosScenario.from_dict({
            "faults": [{"kind": "vnf_crash", "at": 1.0,
                        "target": "random"}]})
        assert scenario.faults[0].target is None

    def test_faults_sorted_by_time(self):
        scenario = ChaosScenario.from_dict({
            "faults": [{"kind": "vnf_crash", "at": 5.0},
                       {"kind": "link_down", "at": 1.0}]})
        assert [fault.at for fault in scenario.faults] == [1.0, 5.0]

    def test_duration_spans_last_heal(self):
        scenario = ChaosScenario.from_dict({
            "faults": [{"kind": "link_down", "at": 2.0, "duration": 3.0},
                       {"kind": "vnf_crash", "at": 4.0}]})
        assert scenario.duration == 5.0

    def test_load_accepts_dict_json_and_path(self, tmp_path):
        data = {"name": "s", "seed": 7,
                "faults": [{"kind": "link_down", "at": 1.0,
                            "duration": 2.0, "target": "l1"}]}
        from_dict = ChaosScenario.load(data)
        from_json = ChaosScenario.load(json.dumps(data))
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(data))
        from_file = ChaosScenario.load(str(path))
        for scenario in (from_dict, from_json, from_file):
            assert scenario.seed == 7
            assert scenario.faults[0].kind == "link_down"
            assert scenario.faults[0].target == "l1"

    def test_to_dict_round_trips(self):
        data = {"name": "rt", "seed": 3,
                "faults": [
                    {"kind": "link_degrade", "at": 1.0, "duration": 2.0,
                     "loss": 0.5},
                    {"kind": "netconf_slow", "at": 2.0,
                     "extra_latency": 0.25, "target": "c1"}]}
        restored = ChaosScenario.from_dict(
            ChaosScenario.from_dict(data).to_dict())
        assert restored.to_dict() == ChaosScenario.from_dict(data).to_dict()

    def test_all_kinds_registered(self):
        assert set(FAULT_KINDS) == {
            "link_down", "link_flap", "link_degrade", "vnf_crash",
            "container_down", "netconf_blackhole", "netconf_slow"}


# -- per-cause drop accounting (satellite: dropped counter split) -------------

class TestDropAccounting:
    def test_down_link_counts_dropped_down(self, escape):
        link = escape.net.links_between("h1", "s1")[0]
        link.set_up(False)
        escape.net.get("h1").ping(escape.net.get("h2").ip,
                                  count=3, interval=0.1)
        escape.run(1.0)
        assert link.dropped_down > 0
        assert link.dropped == link.dropped_down
        stats = escape.net.link_stats()
        assert stats["dropped_down"] >= link.dropped_down
        assert stats["dropped"] == (stats["dropped_down"]
                                    + stats["dropped_loss"]
                                    + stats["dropped_queue"])

    def test_lossy_link_counts_dropped_loss(self, escape):
        link = trunk_link(escape)
        link.loss = 1.0
        escape.net.get("h1").ping(escape.net.get("h2").ip,
                                  count=3, interval=0.1)
        escape.run(1.0)
        assert link.dropped_loss > 0
        assert link.dropped_down == 0
        assert escape.net.link_stats()["dropped_loss"] >= link.dropped_loss


# -- engine: injection, healing, determinism ----------------------------------

class TestChaosEngine:
    def test_inject_and_timed_heal(self, escape):
        deploy(escape)
        link = trunk_link(escape)
        engine = escape.inject_chaos({
            "name": "flap", "seed": 1,
            "faults": [{"kind": "link_down", "at": 0.5, "duration": 1.0,
                        "target": link.name}]})
        escape.run(1.0)
        assert not link.up
        assert engine.active
        escape.run(1.0)
        assert link.up
        assert not engine.active
        assert engine.signature() == [(pytest.approx(escape.sim.now - 1.5,
                                                     abs=0.01),
                                       "link_down", link.name)]

    def test_heal_all_reverts_open_ended_faults(self, escape):
        deploy(escape)
        link = trunk_link(escape)
        engine = escape.inject_chaos({
            "faults": [{"kind": "link_down", "at": 0.2,
                        "target": link.name}]})  # no duration
        escape.run(0.5)
        assert not link.up
        assert engine.heal_all() == 1
        assert link.up

    def test_netconf_slowness_injected_and_healed(self, escape):
        chain = deploy(escape)
        container = chain.mapping.vnf_placement["fw"]
        client = escape.netconf_clients[container]
        base = client.transport.fault_latency
        escape.inject_chaos({
            "faults": [{"kind": "netconf_slow", "at": 0.2,
                        "duration": 1.0, "extra_latency": 0.3,
                        "target": container}]})
        escape.run(0.5)
        assert client.transport.fault_latency == pytest.approx(base + 0.3)
        escape.run(1.0)
        assert client.transport.fault_latency == pytest.approx(base)

    def test_unresolvable_target_skips(self, escape):
        # no VNFs deployed: vnf_crash has no candidates
        engine = escape.inject_chaos({
            "faults": [{"kind": "vnf_crash", "at": 0.1}]})
        escape.run(0.5)
        assert engine.injections[0]["skipped"] == "no candidates"
        assert not engine.active

    def test_rearming_raises(self, escape):
        engine = escape.inject_chaos({
            "faults": [{"kind": "link_down", "at": 0.1, "duration": 1.0}]})
        with pytest.raises(FaultError):
            engine.arm()

    def _signature_for(self, seed):
        escape = fresh_escape()
        deploy(escape)
        escape.inject_chaos({
            "name": "det", "seed": seed,
            "faults": [
                {"kind": "vnf_crash", "at": 0.5},
                {"kind": "link_down", "at": 1.5, "duration": 1.0},
                {"kind": "netconf_blackhole", "at": 3.0,
                 "duration": 0.5},
                {"kind": "link_degrade", "at": 4.0, "duration": 0.5,
                 "loss": 0.3},
            ]})
        engine = escape.chaos_engines[0]
        escape.run(6.0)
        return engine.signature()

    def test_same_seed_identical_schedule(self):
        first = self._signature_for(11)
        second = self._signature_for(11)
        assert first == second
        assert len(first) == 4
        assert all(len(entry) == 3 for entry in first)


# -- end-to-end self-healing --------------------------------------------------

class TestRecovery:
    def test_vnf_crash_restarts_in_place(self, escape):
        chain = deploy(escape)
        name = chain.sg.name
        container_name = chain.mapping.vnf_placement["fw"]
        container = escape.net.get(container_name)
        old_id = chain.vnfs["fw"].vnf_id
        container.crash_vnf(old_id)
        escape.run(1.0)
        # a fresh instance replaced the crashed one, same container
        assert chain.vnfs["fw"].vnf_id != old_id
        assert chain.mapping.vnf_placement["fw"] == container_name
        assert old_id not in container.vnfs  # zombie reaped on restart
        assert escape.recovery.chain_state[name] == CHAIN_HEALTHY
        assert escape.recovery.unrecovered() == []
        assert ping_ok(escape) > 0
        mttr = escape.telemetry.metrics.get(
            "core.recovery.mttr", labels={"fault": "vnf.crashed"})
        assert mttr is not None and mttr.count >= 1

    def test_link_down_reroutes_over_detour(self, escape):
        chain = deploy(escape)
        trunk = trunk_link(escape)
        trunk.set_up(False)
        escape.run(1.0)
        view = escape.orchestrator.view
        assert not view.link_is_up("s1", "s2")
        # traffic flows around the dead trunk while it is still down
        assert ping_ok(escape) > 0
        assert escape.recovery.unrecovered() == []
        action = [a for a in escape.recovery.actions
                  if a["kind"] == "link"][0]
        assert action["ok"] and chain.sg.name in action["services"]
        trunk.set_up(True)
        escape.run(0.5)
        assert view.link_is_up("s1", "s2")

    def test_container_down_fails_over_then_reaps(self, escape):
        chain = deploy(escape)
        old_container = chain.mapping.vnf_placement["fw"]
        # the full outage fault: VNFs crash AND the NETCONF agent goes
        # dark, so the old instance cannot be stopped during failover
        engine = escape.inject_chaos({
            "faults": [{"kind": "container_down", "at": 0.1,
                        "target": old_container}]})
        escape.run(4.0)  # failover waits out the stop-old deadline
        new_container = chain.mapping.vnf_placement["fw"]
        assert new_container != old_container
        assert escape.recovery.chain_state[chain.sg.name] == CHAIN_HEALTHY
        assert ping_ok(escape) > 0
        # the stranded zombie still sits on the dead container...
        zombies = [process for process
                   in escape.net.get(old_container).vnfs.values()
                   if process.status == VNF_FAILED]
        assert zombies
        # ...and is reaped when the container returns
        engine.heal_all()
        escape.run(1.0)
        assert not escape.net.get(old_container).vnfs

    def test_unreachable_repair_gives_up_and_marks_failed(self):
        escape = fresh_escape(NO_DETOUR_TOPOLOGY)
        chain = escape.deploy_service(simple_sg("stuck-chain"))
        trunk = trunk_link(escape)
        trunk.set_up(False)
        escape.run(6.0)  # 3 attempts with exponential backoff
        assert chain.sg.name in escape.recovery.unrecovered()
        assert escape.recovery.chain_state[chain.sg.name] == CHAIN_FAILED
        failed = [a for a in escape.recovery.actions if not a.get("ok")]
        assert failed and failed[-1]["attempts"] == \
            escape.recovery.max_attempts
        assert escape.recovery.pending() == []
        # the original steering was never torn down: when the trunk
        # returns, the chain serves again and its state clears
        trunk.set_up(True)
        escape.run(0.5)
        assert escape.recovery.unrecovered() == []
        assert ping_ok(escape) > 0

    def test_health_reports_recovery_state(self, escape):
        deploy(escape)
        health = escape.health()
        assert health["recovery"]["unrecovered"] == []
        assert health["recovery"]["pending"] == []


# -- migrate_vnf partial-failure rollback (satellite) -------------------------

class TestMigrateRollback:
    def test_partial_failure_restores_old_placement(self, escape):
        chain = deploy(escape)
        old_container = chain.mapping.vnf_placement["fw"]
        old_deployed = chain.vnfs["fw"]
        target = "c2" if old_container == "c1" else "c1"
        # occupy the target's interfaces out-of-band: _start_vnf will
        # boot the replacement but connectVNF must fail mid-migration
        hog_host = escape.net.get(target)
        hog_host.start_vnf(
            "hog", "FromDevice(in0) -> Counter -> ToDevice(out0);",
            ["in0", "out0"], cpu=0.1, mem=16)
        for intf_name, device in zip(list(hog_host.interfaces),
                                     ["in0", "out0"]):
            hog_host.connect_vnf("hog", device, intf_name)

        with pytest.raises(OrchestratorError):
            escape.orchestrator.migrate_vnf(chain, "fw", target)

        # old placement fully intact
        assert chain.mapping.vnf_placement["fw"] == old_container
        assert chain.vnfs["fw"] is old_deployed
        assert chain.active
        # the half-started replacement was cleaned off the target
        assert set(hog_host.vnfs) == {"hog"}
        # reserved resources were released in the view
        snapshot = escape.orchestrator.view.snapshot()[target]
        assert snapshot["cpu_used"] == pytest.approx(0.0)
        # and the chain still carries traffic
        assert ping_ok(escape) > 0


# -- steering self-healing (satellite) ----------------------------------------

class TestSteeringSelfHeal:
    def _delete_one_steered_entry(self, escape):
        """Remove one installed steering entry straight from a switch
        flow table; SEND_FLOW_REM makes the datapath notify POX."""
        installed = next(iter(escape.steering.paths.values()))
        dpid, flow_mod = installed.flow_mods[0]
        switch = next(s for s in escape.net.switches()
                      if s.datapath.dpid == dpid)
        removed = switch.datapath.table.delete(
            flow_mod.match, strict=True, priority=flow_mod.priority,
            now=escape.sim.now)
        assert removed == 1
        return switch, flow_mod

    def test_flow_removed_triggers_reinstall(self, escape):
        deploy(escape)
        escape.run(0.5)
        before = escape.steering.restorations
        switch, flow_mod = self._delete_one_steered_entry(escape)
        escape.run(0.5)
        assert escape.steering.restorations == before + 1
        assert any(entry.match == flow_mod.match
                   and entry.priority == flow_mod.priority
                   for entry in switch.datapath.table.entries)
        assert ping_ok(escape) > 0

    def test_reinstall_survives_link_flap(self, escape):
        """The ISSUE scenario: a trunk flap forces a re-route, then a
        steered entry vanishes — self-healing restores it and traffic
        keeps flowing end to end."""
        deploy(escape)
        trunk = trunk_link(escape)
        trunk.set_up(False)
        escape.run(1.0)   # recovery re-routes over s3
        trunk.set_up(True)
        escape.run(0.5)
        before = escape.steering.restorations
        self._delete_one_steered_entry(escape)
        escape.run(0.5)
        assert escape.steering.restorations == before + 1
        assert ping_ok(escape) > 0
        assert escape.recovery.unrecovered() == []
