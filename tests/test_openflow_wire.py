"""Tests for the OF 1.0 wire codec, including end-to-end operation of
the framework over serialized control channels."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology
from repro.openflow import (BarrierReply, BarrierRequest, EchoReply,
                            EchoRequest, FeaturesReply, FeaturesRequest,
                            FlowMod, FlowRemoved, FlowStatsReply,
                            FlowStatsRequest, Hello, Match, Output,
                            PacketIn, PacketOut, PortDescription,
                            PortStatsReply, PortStatsRequest, PortStatus,
                            SetDlDst, SetDlSrc, SetNwDst, SetNwSrc,
                            SetTpDst, SetTpSrc, SetVlan, StripVlan)
from repro.openflow.match import MATCH_FIELDS
from repro.openflow.messages import FlowStats, PortStats
from repro.openflow.wire import (WireError, pack_actions, pack_match,
                                 pack_message, unpack_actions,
                                 unpack_match, unpack_message)


def match_equal(a: Match, b: Match) -> bool:
    return all(getattr(a, field) == getattr(b, field)
               for field in MATCH_FIELDS)


class TestMatchCodec:
    def test_empty_match(self):
        wire = pack_match(Match())
        assert len(wire) == 40
        assert match_equal(unpack_match(wire), Match())

    def test_full_match(self):
        match = Match(in_port=3, dl_src="00:00:00:00:00:01",
                      dl_dst="00:00:00:00:00:02", dl_vlan=7,
                      dl_type=0x0800, nw_tos=0x10, nw_proto=6,
                      nw_src="10.0.0.1", nw_dst="10.0.0.2",
                      tp_src=1000, tp_dst=80)
        assert match_equal(unpack_match(pack_match(match)), match)

    def test_cidr_nw_match(self):
        match = Match(nw_src=("10.1.0.0", 16), nw_dst=("10.2.3.0", 24))
        again = unpack_match(pack_match(match))
        assert again.nw_src == (match.nw_src[0], 16)
        assert again.nw_dst == (match.nw_dst[0], 24)

    def test_truncated_rejected(self):
        with pytest.raises(WireError):
            unpack_match(b"\x00" * 39)

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=50)
    def test_random_match_roundtrip(self, seed):
        rng = random.Random(seed)
        kwargs = {}
        if rng.random() < 0.5:
            kwargs["in_port"] = rng.randint(0, 0xFFF0)
        if rng.random() < 0.5:
            kwargs["dl_type"] = rng.choice([0x0800, 0x0806])
        if rng.random() < 0.5:
            kwargs["nw_proto"] = rng.randint(0, 255)
        if rng.random() < 0.5:
            kwargs["nw_src"] = ("10.0.0.0", rng.randint(1, 32)) \
                if rng.random() < 0.5 else "10.%d.0.1" % rng.randint(0, 255)
        if rng.random() < 0.5:
            kwargs["tp_dst"] = rng.randint(0, 65535)
        if rng.random() < 0.5:
            kwargs["dl_vlan"] = rng.randint(0, 4095)
        match = Match(**kwargs)
        assert match_equal(unpack_match(pack_match(match)), match)


class TestActionCodec:
    ALL_ACTIONS = [
        Output(7),
        SetVlan(42),
        StripVlan(),
        SetDlSrc("00:00:00:00:00:0a"),
        SetDlDst("00:00:00:00:00:0b"),
        SetNwSrc("1.2.3.4"),
        SetNwDst("5.6.7.8"),
        SetTpSrc(1234),
        SetTpDst(80),
    ]

    def test_every_action_roundtrips(self):
        wire = pack_actions(self.ALL_ACTIONS)
        again = unpack_actions(wire)
        assert again == self.ALL_ACTIONS

    def test_lengths_are_multiples_of_eight(self):
        for action in self.ALL_ACTIONS:
            from repro.openflow.wire import pack_action
            assert len(pack_action(action)) % 8 == 0

    def test_truncated_rejected(self):
        wire = pack_actions([Output(1)])
        with pytest.raises(WireError):
            unpack_actions(wire[:-2])


class TestMessageCodec:
    def roundtrip(self, message):
        wire = pack_message(message)
        again = unpack_message(wire)
        assert type(again) is type(message)
        assert again.xid == message.xid
        return again

    def test_hello(self):
        self.roundtrip(Hello())

    def test_echo(self):
        again = self.roundtrip(EchoRequest(b"probe"))
        assert again.data == b"probe"
        self.roundtrip(EchoReply(b"probe"))

    def test_features(self):
        self.roundtrip(FeaturesRequest())
        reply = FeaturesReply(
            dpid=0x00AABBCCDDEEFF11,
            ports=[PortDescription(1, "s1-eth1", "02:00:00:00:00:01"),
                   PortDescription(2, "s1-eth2", "02:00:00:00:00:02")],
            n_buffers=128, n_tables=2)
        again = self.roundtrip(reply)
        assert again.dpid == reply.dpid
        assert again.n_buffers == 128
        assert [(p.port_no, p.name) for p in again.ports] \
            == [(1, "s1-eth1"), (2, "s1-eth2")]

    def test_packet_in(self):
        message = PacketIn(buffer_id=55, in_port=3, data=b"\xaa" * 60,
                           reason=PacketIn.REASON_NO_MATCH, total_len=90)
        again = self.roundtrip(message)
        assert again.buffer_id == 55
        assert again.in_port == 3
        assert again.total_len == 90
        assert again.data == b"\xaa" * 60

    def test_packet_in_without_buffer(self):
        again = self.roundtrip(PacketIn(None, 1, b"x"))
        assert again.buffer_id is None

    def test_packet_out(self):
        message = PacketOut(actions=[SetVlan(5), Output(2)],
                            data=b"\xbb" * 30, in_port=4)
        again = self.roundtrip(message)
        assert again.actions == message.actions
        assert again.data == message.data
        assert again.in_port == 4

    def test_packet_out_buffered(self):
        again = self.roundtrip(PacketOut(actions=[Output(1)],
                                         buffer_id=9))
        assert again.buffer_id == 9
        assert again.data is None

    def test_flow_mod(self):
        message = FlowMod(Match(in_port=1, nw_dst="10.0.0.2"),
                          [Output(2)], command=FlowMod.ADD,
                          priority=1234, idle_timeout=10.0,
                          hard_timeout=60.0, cookie=0xDEADBEEF,
                          flags=FlowMod.SEND_FLOW_REM, buffer_id=77)
        again = self.roundtrip(message)
        assert match_equal(again.match, message.match)
        assert again.actions == message.actions
        assert again.priority == 1234
        assert again.idle_timeout == 10.0
        assert again.cookie == 0xDEADBEEF
        assert again.flags == FlowMod.SEND_FLOW_REM
        assert again.buffer_id == 77

    def test_flow_removed(self):
        message = FlowRemoved(Match(nw_src="10.0.0.1"), cookie=5,
                              priority=100,
                              reason=FlowRemoved.REASON_IDLE_TIMEOUT,
                              duration=12.5, packet_count=42,
                              byte_count=4200)
        again = self.roundtrip(message)
        assert again.packet_count == 42
        assert again.duration == pytest.approx(12.5, abs=1e-6)

    def test_port_status(self):
        message = PortStatus(PortStatus.REASON_ADD,
                             PortDescription(9, "s1-eth9",
                                             "02:00:00:00:00:09"))
        again = self.roundtrip(message)
        assert again.desc.port_no == 9

    def test_barrier(self):
        self.roundtrip(BarrierRequest())
        self.roundtrip(BarrierReply())

    def test_stats_requests(self):
        again = self.roundtrip(FlowStatsRequest(Match(in_port=2)))
        assert again.match.in_port == 2
        again = self.roundtrip(PortStatsRequest(port_no=None))
        assert again.port_no is None
        again = self.roundtrip(PortStatsRequest(port_no=3))
        assert again.port_no == 3

    def test_flow_stats_reply(self):
        stats = [FlowStats(Match(in_port=1), 100, 7, 3.25, 10, 1000,
                           [Output(2)]),
                 FlowStats(Match(), 50, 8, 1.0, 5, 500,
                           [SetVlan(3), Output(4)])]
        again = self.roundtrip(FlowStatsReply(stats))
        assert len(again.stats) == 2
        assert again.stats[0].packet_count == 10
        assert again.stats[1].actions == [SetVlan(3), Output(4)]

    def test_port_stats_reply(self):
        stats = [PortStats(1, 10, 20, 1000, 2000, 1, 2)]
        again = self.roundtrip(PortStatsReply(stats))
        assert again.stats[0].tx_bytes == 2000
        assert again.stats[0].rx_dropped == 1

    def test_bad_version_rejected(self):
        wire = bytearray(pack_message(Hello()))
        wire[0] = 0x04
        with pytest.raises(WireError):
            unpack_message(bytes(wire))

    def test_length_mismatch_rejected(self):
        wire = pack_message(Hello()) + b"trailing"
        with pytest.raises(WireError):
            unpack_message(wire)


class TestEndToEndOverWire:
    """The entire ESCAPE demo with serialize=True control channels —
    every OF message transits the real wire format."""

    TOPOLOGY = {
        "nodes": [
            {"name": "h1", "role": "host"},
            {"name": "h2", "role": "host"},
            {"name": "s1", "role": "switch"},
            {"name": "nc1", "role": "vnf_container", "cpu": 4,
             "mem": 2048},
        ],
        "links": [
            {"from": "h1", "to": "s1", "delay": 0.001},
            {"from": "h2", "to": "s1", "delay": 0.001},
            {"from": "nc1", "to": "s1", "delay": 0.0005},
            {"from": "nc1", "to": "s1", "delay": 0.0005},
        ],
    }

    SG = {
        "name": "wire-chain",
        "saps": ["h1", "h2"],
        "vnfs": [{"name": "fw", "type": "firewall",
                  "params": {"rules": "allow icmp, drop all"}}],
        "chain": ["h1", "fw", "h2"],
    }

    def test_full_demo_over_serialized_channels(self):
        escape = ESCAPE.from_topology(load_topology(self.TOPOLOGY),
                                      of_wire=True)
        escape.start()
        chain = escape.deploy_service(load_service_graph(self.SG))
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        result = h1.ping(h2.ip, count=5, interval=0.2)
        escape.run(3.0)
        assert result.received == 5
        assert int(chain.read_handler("fw", "fw.passed")) >= 5
        h1.send_udp(h2.ip, 9999, b"nope")
        escape.run(0.5)
        assert h2.udp_rx_count == 0
        # wire bytes actually flowed
        switch = escape.net.get("s1")
        assert switch.datapath.channel.wire_bytes > 0
        chain.undeploy()
