"""Tests for the Click configuration-language parser."""

import pytest

from repro.click import (ConfigError, ConnectionSpec, parse_config)
from repro.click.parser import split_args, strip_comments


class TestSplitArgs:
    def test_simple_commas(self):
        assert split_args("a, b, c") == ["a", "b", "c"]

    def test_nested_parens_protected(self):
        assert split_args("f(a, b), c") == ["f(a, b)", "c"]

    def test_brackets_protected(self):
        assert split_args("x[1, 2], y") == ["x[1, 2]", "y"]

    def test_quotes_protected(self):
        assert split_args('"a, b", c') == ['"a, b"', "c"]

    def test_empty_string(self):
        assert split_args("") == []

    def test_whitespace_trimmed(self):
        assert split_args("  a ,  b  ") == ["a", "b"]

    def test_unbalanced_raises(self):
        with pytest.raises(ConfigError):
            split_args("f(a, b")


class TestStripComments:
    def test_line_comment(self):
        assert "secret" not in strip_comments("a -> b; // secret")

    def test_block_comment(self):
        assert "hidden" not in strip_comments("a /* hidden */ -> b;")

    def test_multiline_block(self):
        text = "a -> b;\n/* line1\nline2 */\nc -> d;"
        cleaned = strip_comments(text)
        assert "line1" not in cleaned
        assert "c -> d" in cleaned


class TestDeclarations:
    def test_simple_declaration(self):
        config = parse_config("src :: InfiniteSource(LIMIT 3);")
        assert config.elements["src"].class_name == "InfiniteSource"
        assert config.elements["src"].config == "LIMIT 3"

    def test_declaration_without_args(self):
        config = parse_config("c :: Counter;")
        assert config.elements["c"].config == ""

    def test_comma_list_declaration(self):
        config = parse_config("c1, c2, c3 :: Counter;")
        assert set(config.elements) == {"c1", "c2", "c3"}
        assert all(spec.class_name == "Counter"
                   for spec in config.elements.values())

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("c :: Counter; c :: Queue;")

    def test_config_args_split(self):
        config = parse_config("s :: RatedSource(DATA xyz, RATE 10);")
        assert config.elements["s"].config_args() == ["DATA xyz", "RATE 10"]


class TestConnections:
    def test_simple_chain(self):
        config = parse_config("a :: Counter; b :: Counter; a -> b;")
        assert config.connections == [ConnectionSpec("a", 0, "b", 0)]

    def test_ports(self):
        config = parse_config(
            "cl :: IPClassifier(tcp, -); d :: Discard;"
            "cl [1] -> [0] d;")
        assert config.connections == [ConnectionSpec("cl", 1, "d", 0)]

    def test_multi_hop_chain(self):
        config = parse_config("a, b, c :: Counter; a -> b -> c;")
        assert config.connections == [ConnectionSpec("a", 0, "b", 0),
                                      ConnectionSpec("b", 0, "c", 0)]

    def test_inline_named_declaration_in_chain(self):
        config = parse_config(
            "src :: InfiniteSource(LIMIT 1) -> cnt :: Counter -> Discard;")
        assert set(config.elements) == {"src", "cnt", "Discard@1"}
        assert len(config.connections) == 2

    def test_anonymous_element_with_args(self):
        config = parse_config("Idle -> Counter() -> Discard;")
        names = list(config.elements)
        assert any(name.startswith("Counter@") for name in names)

    def test_bare_class_name_becomes_anonymous(self):
        config = parse_config("Idle -> Discard;")
        assert len(config.elements) == 2
        assert len(config.connections) == 1

    def test_undeclared_reference_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("nosuchelement -> Discard;")

    def test_lone_reference_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("c :: Counter; c;")

    def test_lone_declaration_allowed(self):
        config = parse_config("c :: Counter;")
        assert config.connections == []

    def test_port_on_both_sides(self):
        config = parse_config(
            "t :: Tee; a, b :: Counter; i :: Idle;"
            "i -> t; t[0] -> a; t[1] -> b;")
        assert ConnectionSpec("t", 1, "b", 0) in config.connections

    def test_statement_without_semicolon_at_end(self):
        config = parse_config("a :: Counter; Idle -> a -> Discard")
        assert len(config.connections) == 2

    def test_empty_config(self):
        config = parse_config("  //nothing\n")
        assert not config.elements
        assert not config.connections

    def test_unexpected_character_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("a :: Counter; a $ b;")
