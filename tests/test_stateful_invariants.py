"""Randomized stateful testing: arbitrary interleavings of deploy /
undeploy / migrate / traffic must preserve the framework's invariants.

Invariants checked after every operation:

* the resource view's per-container usage equals the sum of demands of
  the *active* chains placed there (and matches the container's own
  cgroup budget),
* every active chain's steering paths are installed; no orphan steering
  paths exist,
* every active chain's VNFs are running in the containers the mapping
  says; no orphan VNF processes exist.
"""

import random

import pytest

from repro.core import ESCAPE, MappingError, OrchestratorError
from repro.core.sgfile import load_service_graph, load_topology


def topology():
    nodes = [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
    ]
    links = [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.001},
        {"from": "h2", "to": "s2", "delay": 0.001},
    ]
    for index in range(3):
        name = "nc%d" % index
        nodes.append({"name": name, "role": "vnf_container",
                      "cpu": 4, "mem": 4096})
        switch = "s1" if index % 2 == 0 else "s2"
        links.extend({"from": name, "to": switch, "delay": 0.0005}
                     for _ in range(8))
    return load_topology({"nodes": nodes, "links": links})


def make_sg(name, rng):
    length = rng.randint(1, 3)
    vnf_type = rng.choice(["forwarder", "firewall", "monitor"])
    vnfs = ["v%d" % index for index in range(length)]
    return load_service_graph({
        "name": name,
        "saps": ["h1", "h2"],
        "vnfs": [{"name": vnf, "type": vnf_type} for vnf in vnfs],
        "chain": ["h1"] + vnfs + ["h2"],
    })


def check_invariants(escape):
    active = [chain for chain in escape.service_layer.services.values()
              if chain.active]

    # 1. view usage == sum of active chains' demands, per container
    expected = {name: [0.0, 0.0, 0]  # cpu, mem, ports
                for name in escape.orchestrator.view.containers()}
    for chain in active:
        for vnf_name, container in chain.mapping.vnf_placement.items():
            cpu, mem, ports = chain.mapper.demand_of(chain.sg, vnf_name)
            expected[container][0] += cpu
            expected[container][1] += mem
            expected[container][2] += ports
    for name, (cpu, mem, ports) in expected.items():
        data = escape.orchestrator.view.graph.nodes[name]
        assert data["cpu_used"] == pytest.approx(cpu), name
        assert data["mem_used"] == pytest.approx(mem), name
        assert data["ports_used"] == ports, name
        # the container's own cgroup budget agrees
        budget = escape.net.get(name).budget
        assert budget.cpu_used == pytest.approx(cpu), name

    # 2. steering paths == union of active chains' path ids
    expected_paths = set()
    for chain in active:
        expected_paths.update(chain.path_ids)
    assert set(escape.steering.paths) == expected_paths

    # 3. running VNF ids == union of active chains' instances
    expected_vnfs = {}
    for chain in active:
        for deployed in chain.vnfs.values():
            expected_vnfs.setdefault(deployed.container,
                                     set()).add(deployed.vnf_id)
    for container in escape.net.vnf_containers():
        assert set(container.vnfs) \
            == expected_vnfs.get(container.name, set()), container.name


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_random_operation_sequences_preserve_invariants(seed):
    rng = random.Random(seed)
    escape = ESCAPE.from_topology(topology(),
                                  discovery_interval=3600.0)
    escape.start()
    containers = [c.name for c in escape.net.vnf_containers()]
    counter = 0
    for _step in range(40):
        operation = rng.choice(["deploy", "deploy", "undeploy",
                                "migrate", "traffic", "run"])
        active = [chain for chain
                  in escape.service_layer.services.values()
                  if chain.active]
        if operation == "deploy":
            counter += 1
            name = "svc-%d-%d" % (seed, counter)
            try:
                escape.deploy_service(
                    make_sg(name, rng),
                    mapper=rng.choice(["greedy", "shortest-path"]))
            except (MappingError, OrchestratorError):
                pass  # substrate full: fine, invariants must still hold
        elif operation == "undeploy" and active:
            chain = rng.choice(active)
            chain.undeploy()
            escape.service_layer.services.pop(chain.sg.name, None)
        elif operation == "migrate" and active:
            chain = rng.choice(active)
            vnf_name = rng.choice(list(chain.vnfs))
            target = rng.choice(containers)
            try:
                chain.migrate(vnf_name, target)
            except OrchestratorError:
                pass  # target full / no ports: acceptable
        elif operation == "traffic":
            h1 = escape.net.get("h1")
            h2 = escape.net.get("h2")
            h1.send_udp(h2.ip, 5001, b"probe")
            escape.run(0.2)
        else:
            escape.run(rng.uniform(0.05, 0.5))
        check_invariants(escape)
    # teardown everything and verify the substrate is pristine
    for chain in list(escape.service_layer.services.values()):
        if chain.active:
            chain.undeploy()
    escape.service_layer.services.clear()
    check_invariants(escape)
    for container in escape.net.vnf_containers():
        assert container.budget.cpu_used == pytest.approx(0.0)
