"""Tests for VNF containers: lifecycle, isolation, splicing."""

import pytest

from repro.netem import Network, ResourceError, VNFContainer
from repro.netem.vnf import FAILED, STOPPED, UP
from repro.sim import Simulator

SIMPLE_VNF = ("src :: RatedSource(RATE 100, LIMIT 1000)"
              " -> cnt :: Counter -> Discard;")
WIRE_VNF = "FromDevice(in0) -> cnt :: Counter -> ToDevice(out0);"


class TestVNFLifecycle:
    def test_start_and_status(self):
        net = Network()
        container = net.add_vnf_container("nc1")
        process = container.start_vnf("v1", SIMPLE_VNF, [])
        assert process.status == UP
        assert container.status_report()["v1"]["status"] == UP

    def test_vnf_runs_on_shared_clock(self):
        net = Network()
        container = net.add_vnf_container("nc1")
        process = container.start_vnf("v1", SIMPLE_VNF, [])
        net.run(1.0)
        assert int(process.read_handler("cnt.count")) > 50

    def test_stop_releases_budget(self):
        net = Network()
        container = net.add_vnf_container("nc1", cpu=1.0)
        container.start_vnf("v1", SIMPLE_VNF, [], cpu=1.0)
        with pytest.raises(ResourceError):
            container.start_vnf("v2", SIMPLE_VNF, [], cpu=0.5)
        container.stop_vnf("v1")
        container.start_vnf("v2", SIMPLE_VNF, [], cpu=0.5)

    def test_duplicate_id_rejected(self):
        container = Network().add_vnf_container("nc1")
        container.start_vnf("v1", SIMPLE_VNF, [])
        with pytest.raises(ValueError):
            container.start_vnf("v1", SIMPLE_VNF, [])

    def test_stop_unknown_rejected(self):
        with pytest.raises(ValueError):
            Network().add_vnf_container("nc1").stop_vnf("ghost")

    def test_bad_config_releases_reservation(self):
        container = Network().add_vnf_container("nc1", cpu=1.0)
        with pytest.raises(Exception):
            container.start_vnf("broken", "x :: NoSuchElement;", [],
                               cpu=1.0)
        assert container.budget.cpu_free == pytest.approx(1.0)

    def test_isolation_none_skips_accounting(self):
        net = Network()
        container = net.add_vnf_container("nc1", cpu=0.5,
                                          isolation="none")
        # demands exceeding capacity are fine without cgroup isolation
        container.start_vnf("v1", SIMPLE_VNF, [], cpu=5.0)
        assert container.budget.cpu_used == 0.0

    def test_unknown_isolation_rejected(self):
        with pytest.raises(ValueError):
            VNFContainer("x", Simulator(), isolation="vm")

    def test_uptime_grows(self):
        net = Network()
        container = net.add_vnf_container("nc1")
        container.start_vnf("v1", SIMPLE_VNF, [])
        net.run(2.5)
        assert container.status_report()["v1"]["uptime"] \
            == pytest.approx(2.5)

    def test_container_stop_stops_all(self):
        container = Network().add_vnf_container("nc1")
        container.start_vnf("v1", SIMPLE_VNF, [])
        container.start_vnf("v2", SIMPLE_VNF, [])
        container.stop()
        assert container.vnfs == {}


class TestSplicing:
    def _wired_container(self):
        net = Network()
        container = net.add_vnf_container("nc1")
        container.add_interface("00:00:00:00:01:01", name="nc1-eth0")
        container.add_interface("00:00:00:00:01:02", name="nc1-eth1")
        return net, container

    def test_connect_and_traffic(self):
        net, container = self._wired_container()
        process = container.start_vnf("v1", WIRE_VNF, ["in0", "out0"])
        container.connect_vnf("v1", "in0", "nc1-eth0")
        container.connect_vnf("v1", "out0", "nc1-eth1")
        sent = []
        container.interfaces["nc1-eth1"].send = sent.append  # stub link
        # frame arriving on eth0 flows through the VNF and out eth1
        process.devices["in0"].deliver(b"frame")
        assert process.read_handler("cnt.count") == "1"

    def test_connect_unknown_device(self):
        _net, container = self._wired_container()
        container.start_vnf("v1", WIRE_VNF, ["in0", "out0"])
        with pytest.raises(ValueError):
            container.connect_vnf("v1", "bogus", "nc1-eth0")

    def test_connect_unknown_interface(self):
        _net, container = self._wired_container()
        container.start_vnf("v1", WIRE_VNF, ["in0", "out0"])
        with pytest.raises(ValueError):
            container.connect_vnf("v1", "in0", "ghost-eth9")

    def test_interface_cannot_be_double_spliced(self):
        _net, container = self._wired_container()
        container.start_vnf("v1", WIRE_VNF, ["in0", "out0"])
        container.connect_vnf("v1", "in0", "nc1-eth0")
        with pytest.raises(ValueError):
            container.connect_vnf("v1", "out0", "nc1-eth0")

    def test_free_interfaces_tracks_splices(self):
        _net, container = self._wired_container()
        container.start_vnf("v1", WIRE_VNF, ["in0", "out0"])
        assert len(container.free_interfaces()) == 2
        container.connect_vnf("v1", "in0", "nc1-eth0")
        assert container.free_interfaces() == ["nc1-eth1"]

    def test_disconnect_frees_interface(self):
        _net, container = self._wired_container()
        container.start_vnf("v1", WIRE_VNF, ["in0", "out0"])
        container.connect_vnf("v1", "in0", "nc1-eth0")
        container.disconnect_vnf("v1", "in0")
        assert len(container.free_interfaces()) == 2

    def test_stop_vnf_unsplices(self):
        _net, container = self._wired_container()
        container.start_vnf("v1", WIRE_VNF, ["in0", "out0"])
        container.connect_vnf("v1", "in0", "nc1-eth0")
        container.stop_vnf("v1")
        assert len(container.free_interfaces()) == 2

    def test_status_reports_device_bindings(self):
        _net, container = self._wired_container()
        container.start_vnf("v1", WIRE_VNF, ["in0", "out0"])
        container.connect_vnf("v1", "in0", "nc1-eth0")
        devices = container.status_report()["v1"]["devices"]
        assert devices["in0"] == "nc1-eth0"
        assert devices["out0"] is None
