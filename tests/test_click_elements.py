"""Tests for the stock Click element library."""

import pytest

from repro.click import ClickPacket, ConfigError, Router
from repro.packet import (ARP, Ethernet, ICMP, IPv4, TCP, UDP)
from repro.sim import Simulator


def ip_packet(proto_payload=None, srcip="10.0.0.1", dstip="10.0.0.2",
              protocol=17, src="00:00:00:00:00:01",
              dst="00:00:00:00:00:02"):
    return ClickPacket.from_header(Ethernet(
        src=src, dst=dst, type=Ethernet.IP_TYPE,
        payload=IPv4(srcip=srcip, dstip=dstip, protocol=protocol,
                     payload=proto_payload)))


def run_router(config, duration=1.0):
    router = Router.from_config(config)
    router.start()
    router.sim.run(until=duration)
    return router


class TestSources:
    def test_infinite_source_limit(self):
        router = run_router(
            "s :: InfiniteSource(DATA payload, LIMIT 7)"
            " -> c :: Counter -> Discard;")
        assert router.read_handler("c.count") == "7"

    def test_infinite_source_data(self):
        router = Router.from_config(
            "s :: InfiniteSource(DATA hello, LIMIT 1)"
            " -> p :: Print(QUIET true) -> Discard;")
        router.start()
        router.sim.run(until=0.1)
        assert b"hello".hex() in router.read_handler("p.log")

    def test_rated_source_rate(self):
        router = run_router(
            "s :: RatedSource(RATE 100) -> c :: Counter -> Discard;",
            duration=1.0)
        count = int(router.read_handler("c.count"))
        assert 95 <= count <= 101

    def test_rated_source_positional_args(self):
        router = Router.from_config(
            "s :: RatedSource(xyz, 50, 10) -> Discard;")
        source = router.element("s")
        assert source.data == b"xyz"
        assert source.rate == 50.0
        assert source.limit == 10

    def test_rated_source_rate_handler(self):
        router = run_router(
            "s :: RatedSource(RATE 10) -> c :: Counter -> Discard;",
            duration=0.5)
        router.write_handler("s.rate", "1000")
        router.sim.run(until=1.0)
        assert int(router.read_handler("c.count")) > 100

    def test_rated_source_zero_rate_rejected(self):
        with pytest.raises(ConfigError):
            Router.from_config("s :: RatedSource(RATE 0) -> Discard;")

    def test_timed_source_interval(self):
        router = run_router(
            "s :: TimedSource(0.25) -> c :: Counter -> Discard;",
            duration=1.05)
        assert router.read_handler("c.count") == "4"

    def test_source_deactivation(self):
        router = Router.from_config(
            "s :: RatedSource(RATE 100) -> c :: Counter -> Discard;")
        router.start()
        router.sim.run(until=0.5)
        router.write_handler("s.active", "false")
        at_stop = int(router.read_handler("c.count"))
        router.sim.run(until=1.5)
        assert int(router.read_handler("c.count")) == at_stop

    def test_source_reactivation(self):
        router = Router.from_config(
            "s :: RatedSource(RATE 100, ACTIVE false)"
            " -> c :: Counter -> Discard;")
        router.start()
        router.sim.run(until=0.5)
        assert router.read_handler("c.count") == "0"
        router.write_handler("s.active", "true")
        router.sim.run(until=1.0)
        assert int(router.read_handler("c.count")) > 0


class TestQueues:
    def test_fifo_order(self):
        router = Router.from_config(
            "Idle -> q :: Queue(10); q -> Unqueue -> Discard;")
        queue = router.element("q")
        first = ClickPacket(b"first")
        second = ClickPacket(b"second")
        queue.push(0, first)
        queue.push(0, second)
        assert queue.pull(0) is first
        assert queue.pull(0) is second
        assert queue.pull(0) is None

    def test_tail_drop_at_capacity(self):
        router = Router.from_config(
            "Idle -> q :: Queue(2); q -> Unqueue -> Discard;")
        queue = router.element("q")
        for index in range(5):
            queue.push(0, ClickPacket(b"%d" % index))
        assert queue.read_handler("length") == "2"
        assert queue.read_handler("drops") == "3"
        assert queue.pull(0).data == b"0"  # oldest survived

    def test_front_drop_keeps_newest(self):
        router = Router.from_config(
            "Idle -> q :: FrontDropQueue(2); q -> Unqueue -> Discard;")
        queue = router.element("q")
        for index in range(5):
            queue.push(0, ClickPacket(b"%d" % index))
        assert queue.pull(0).data == b"3"
        assert queue.pull(0).data == b"4"
        assert queue.read_handler("drops") == "3"

    def test_highwater_mark(self):
        router = Router.from_config(
            "Idle -> q :: Queue(100); q -> Unqueue -> Discard;")
        queue = router.element("q")
        for _ in range(7):
            queue.push(0, ClickPacket(b"x"))
        for _ in range(7):
            queue.pull(0)
        assert queue.read_handler("highwater") == "7"

    def test_bad_capacity_rejected(self):
        with pytest.raises(ConfigError):
            Router.from_config("Idle -> Queue(0) -> Unqueue -> Discard;")

    def test_rated_unqueue_drains_at_rate(self):
        router = run_router(
            "s :: InfiniteSource(LIMIT 1000) -> q :: Queue(1000)"
            " -> u :: RatedUnqueue(RATE 100) -> c :: Counter -> Discard;",
            duration=1.0)
        count = int(router.read_handler("c.count"))
        assert 90 <= count <= 105

    def test_unqueue_burst(self):
        router = run_router(
            "s :: InfiniteSource(LIMIT 50) -> q :: Queue(100)"
            " -> u :: Unqueue(BURST 10) -> c :: Counter -> Discard;",
            duration=0.5)
        assert router.read_handler("c.count") == "50"


class TestCounters:
    def test_count_and_bytes(self):
        router = Router.from_config(
            "Idle -> c :: Counter -> Discard;")
        router.start()
        counter = router.element("c")
        counter.push(0, ClickPacket(b"12345"))
        counter.push(0, ClickPacket(b"67"))
        assert counter.read_handler("count") == "2"
        assert counter.read_handler("byte_count") == "7"

    def test_rate_over_lifetime(self):
        router = run_router(
            "s :: RatedSource(RATE 100, LIMIT 100)"
            " -> c :: Counter -> Discard;", duration=2.0)
        rate = float(router.read_handler("c.rate"))
        assert 90 <= rate <= 110

    def test_reset(self):
        router = run_router(
            "s :: InfiniteSource(LIMIT 3) -> c :: Counter -> Discard;")
        router.write_handler("c.reset", "")
        assert router.read_handler("c.count") == "0"
        assert router.read_handler("c.byte_count") == "0"

    def test_average_counter_ewma(self):
        router = run_router(
            "s :: RatedSource(RATE 200) -> c :: AverageCounter(0.5)"
            " -> Discard;", duration=2.0)
        ewma = float(router.read_handler("c.ewma_rate"))
        assert 100 <= ewma <= 300

    def test_counter_works_on_pull_path(self):
        router = run_router(
            "s :: InfiniteSource(LIMIT 20) -> Queue(50)"
            " -> c :: Counter -> Unqueue -> Discard;", duration=0.5)
        assert router.read_handler("c.count") == "20"


class TestClassifier:
    def _router(self):
        router = Router.from_config(
            "cl :: Classifier(12/0800, 12/0806, -);"
            "Idle -> cl;"
            "cl[0] -> ip :: Counter -> Discard;"
            "cl[1] -> arp :: Counter -> Discard;"
            "cl[2] -> rest :: Counter -> Discard;")
        router.start()
        return router

    def test_ethertype_dispatch(self):
        router = self._router()
        classifier = router.element("cl")
        classifier.push(0, ip_packet())
        classifier.push(0, ClickPacket.from_header(
            Ethernet(type=Ethernet.ARP_TYPE, payload=ARP())))
        classifier.push(0, ClickPacket.from_header(Ethernet(type=0x9999)))
        assert router.read_handler("ip.count") == "1"
        assert router.read_handler("arp.count") == "1"
        assert router.read_handler("rest.count") == "1"

    def test_short_packet_no_match(self):
        router = self._router()
        router.element("cl").push(0, ClickPacket(b"\x00" * 4))
        # falls to the catch-all "-" pattern
        assert router.read_handler("rest.count") == "1"

    def test_wildcard_nibbles(self):
        router = Router.from_config(
            "cl :: Classifier(12/08??); Idle -> cl;"
            "cl -> hit :: Counter -> Discard;")
        router.start()
        router.element("cl").push(0, ip_packet())  # 0800 matches 08??
        assert router.read_handler("hit.count") == "1"

    def test_no_match_drops(self):
        router = Router.from_config(
            "cl :: Classifier(12/9999); Idle -> cl;"
            "cl -> hit :: Counter -> Discard;")
        router.start()
        router.element("cl").push(0, ip_packet())
        assert router.read_handler("hit.count") == "0"
        assert router.read_handler("cl.dropped") == "1"

    def test_odd_hex_rejected(self):
        with pytest.raises(ConfigError):
            Router.from_config("Idle -> Classifier(12/080) -> Discard;")


class TestIPClassifier:
    def _build(self, *exprs):
        outputs = "".join(
            "cl[%d] -> o%d :: Counter -> Discard;" % (i, i)
            for i in range(len(exprs)))
        router = Router.from_config(
            "cl :: IPClassifier(%s); Idle -> cl; %s"
            % (", ".join(exprs), outputs))
        router.start()
        return router

    def test_proto_keywords(self):
        router = self._build("tcp", "udp", "icmp", "-")
        classifier = router.element("cl")
        classifier.push(0, ip_packet(TCP(dstport=80), protocol=6))
        classifier.push(0, ip_packet(UDP(dstport=53), protocol=17))
        classifier.push(0, ip_packet(ICMP(), protocol=1))
        classifier.push(0, ClickPacket.from_header(
            Ethernet(type=Ethernet.ARP_TYPE, payload=ARP())))
        for index in range(4):
            assert router.read_handler("o%d.count" % index) == "1"

    def test_implicit_and(self):
        router = self._build("tcp dst port 80", "-")
        classifier = router.element("cl")
        classifier.push(0, ip_packet(TCP(dstport=80), protocol=6))
        classifier.push(0, ip_packet(TCP(dstport=22), protocol=6))
        assert router.read_handler("o0.count") == "1"
        assert router.read_handler("o1.count") == "1"

    def test_src_dst_host(self):
        router = self._build("src host 10.0.0.1", "dst host 10.0.0.9", "-")
        classifier = router.element("cl")
        classifier.push(0, ip_packet(srcip="10.0.0.1"))
        classifier.push(0, ip_packet(srcip="10.0.0.5", dstip="10.0.0.9"))
        classifier.push(0, ip_packet(srcip="10.0.0.5"))
        assert router.read_handler("o0.count") == "1"
        assert router.read_handler("o1.count") == "1"
        assert router.read_handler("o2.count") == "1"

    def test_undirected_host(self):
        router = self._build("host 10.0.0.7", "-")
        classifier = router.element("cl")
        classifier.push(0, ip_packet(srcip="10.0.0.7"))
        classifier.push(0, ip_packet(dstip="10.0.0.7"))
        classifier.push(0, ip_packet())
        assert router.read_handler("o0.count") == "2"

    def test_net_cidr(self):
        router = self._build("src net 10.1.0.0/16", "-")
        classifier = router.element("cl")
        classifier.push(0, ip_packet(srcip="10.1.2.3"))
        classifier.push(0, ip_packet(srcip="10.2.2.3"))
        assert router.read_handler("o0.count") == "1"

    def test_or_and_not(self):
        router = self._build("tcp or udp", "-")
        classifier = router.element("cl")
        classifier.push(0, ip_packet(TCP(), protocol=6))
        classifier.push(0, ip_packet(UDP(), protocol=17))
        classifier.push(0, ip_packet(ICMP(), protocol=1))
        assert router.read_handler("o0.count") == "2"
        assert router.read_handler("o1.count") == "1"

    def test_not_expression(self):
        router = self._build("not udp", "-")
        classifier = router.element("cl")
        classifier.push(0, ip_packet(TCP(), protocol=6))
        classifier.push(0, ip_packet(UDP(), protocol=17))
        assert router.read_handler("o0.count") == "1"

    def test_parenthesized(self):
        router = self._build("(tcp or udp) and dst host 10.0.0.2", "-")
        classifier = router.element("cl")
        classifier.push(0, ip_packet(TCP(), protocol=6))           # match
        classifier.push(0, ip_packet(TCP(), protocol=6,
                                     dstip="10.0.0.3"))            # no
        assert router.read_handler("o0.count") == "1"

    def test_icmp_type(self):
        router = self._build("icmp type 8", "-")
        classifier = router.element("cl")
        classifier.push(0, ip_packet(ICMP(type=8), protocol=1))
        classifier.push(0, ip_packet(ICMP(type=0), protocol=1))
        assert router.read_handler("o0.count") == "1"

    def test_ip_proto_number(self):
        router = self._build("ip proto 89", "-")
        classifier = router.element("cl")
        classifier.push(0, ip_packet(protocol=89))
        assert router.read_handler("o0.count") == "1"

    def test_pattern_counters(self):
        router = self._build("tcp", "-")
        router.element("cl").push(0, ip_packet(TCP(), protocol=6))
        assert router.read_handler("cl.pattern0_count") == "1"

    def test_bad_expression_rejected(self):
        with pytest.raises(ConfigError):
            self._build("frobnicate 7")

    def test_unmatched_dropped(self):
        router = self._build("tcp")
        router.element("cl").push(0, ip_packet(UDP(), protocol=17))
        assert router.read_handler("cl.dropped") == "1"


class TestHeaderOps:
    def test_strip(self):
        router = Router.from_config(
            "Idle -> s :: Strip(14) -> c :: Counter -> Discard;")
        router.start()
        packet = ip_packet()
        original_len = len(packet)
        router.element("s").push(0, packet)
        assert int(router.read_handler("c.byte_count")) \
            == original_len - 14

    def test_ether_encap(self):
        router = Router.from_config(
            "Idle -> e :: EtherEncap(0x0800, 00:00:00:00:00:0a,"
            " 00:00:00:00:00:0b) -> c :: Counter -> Discard;")
        router.start()
        inner = IPv4(srcip="1.1.1.1", dstip="2.2.2.2").pack()
        captured = []
        router.element("c").push = lambda port, pkt: captured.append(pkt)
        router.element("e").push(0, ClickPacket(inner))
        frame = Ethernet.unpack(captured[0].data)
        assert str(frame.src) == "00:00:00:00:00:0a"
        assert str(frame.dst) == "00:00:00:00:00:0b"
        assert isinstance(frame.payload, IPv4)

    def test_ether_mirror(self):
        router = Router.from_config(
            "Idle -> m :: EtherMirror -> c :: Counter -> Discard;")
        router.start()
        captured = []
        router.element("c").push = lambda port, pkt: captured.append(pkt)
        router.element("m").push(0, ip_packet(src="00:00:00:00:00:01",
                                              dst="00:00:00:00:00:02"))
        frame = Ethernet.unpack(captured[0].data)
        assert str(frame.src) == "00:00:00:00:00:02"
        assert str(frame.dst) == "00:00:00:00:00:01"

    def test_check_ip_header_passes_good(self):
        router = Router.from_config(
            "Idle -> ch :: CheckIPHeader -> c :: Counter -> Discard;")
        router.start()
        router.element("ch").push(0, ip_packet())
        assert router.read_handler("c.count") == "1"
        assert router.read_handler("ch.drops") == "0"

    def test_check_ip_header_drops_bad(self):
        router = Router.from_config(
            "Idle -> ch :: CheckIPHeader -> c :: Counter -> Discard;")
        router.start()
        router.element("ch").push(
            0, ClickPacket.from_header(Ethernet(type=Ethernet.IP_TYPE,
                                                payload=b"bogus")))
        assert router.read_handler("c.count") == "0"
        assert router.read_handler("ch.drops") == "1"

    def test_dec_ip_ttl(self):
        router = Router.from_config(
            "Idle -> d :: DecIPTTL -> c :: Counter -> Discard;")
        router.start()
        captured = []
        router.element("c").push = lambda port, pkt: captured.append(pkt)
        packet = ip_packet()
        original_ttl = packet.ip().ttl
        router.element("d").push(0, packet)
        assert captured[0].ip().ttl == original_ttl - 1

    def test_dec_ip_ttl_expiry(self):
        router = Router.from_config(
            "Idle -> d :: DecIPTTL -> c :: Counter -> Discard;")
        router.start()
        packet = ClickPacket.from_header(Ethernet(
            type=Ethernet.IP_TYPE,
            payload=IPv4(srcip="1.1.1.1", dstip="2.2.2.2", ttl=1)))
        router.element("d").push(0, packet)
        assert router.read_handler("c.count") == "0"
        assert router.read_handler("d.expired") == "1"

    def test_paint_and_paintswitch(self):
        router = Router.from_config(
            "Idle -> p :: Paint(2) -> ps :: PaintSwitch;"
            "ps[0] -> o0 :: Counter -> Discard;"
            "ps[1] -> o1 :: Counter -> Discard;"
            "ps[2] -> o2 :: Counter -> Discard;")
        router.start()
        router.element("p").push(0, ClickPacket(b"x"))
        assert router.read_handler("o2.count") == "1"

    def test_paint_out_of_range(self):
        with pytest.raises(ConfigError):
            Router.from_config("Idle -> Paint(300) -> Discard;")

    def test_icmp_ping_responder(self):
        router = Router.from_config(
            "Idle -> r :: ICMPPingResponder -> c :: Counter -> Discard;")
        router.start()
        captured = []
        router.element("c").push = lambda port, pkt: captured.append(pkt)
        request = ClickPacket.from_header(Ethernet(
            src="00:00:00:00:00:01", dst="00:00:00:00:00:02",
            type=Ethernet.IP_TYPE,
            payload=IPv4(srcip="10.0.0.1", dstip="10.0.0.2", protocol=1,
                         payload=ICMP(type=ICMP.TYPE_ECHO_REQUEST, id=5,
                                      seq=2))))
        router.element("r").push(0, request)
        reply = Ethernet.unpack(captured[0].data)
        assert str(reply.dst) == "00:00:00:00:00:01"
        icmp = reply.find(ICMP)
        assert icmp.is_echo_reply
        assert (icmp.id, icmp.seq) == (5, 2)
        assert str(reply.find(IPv4).srcip) == "10.0.0.2"

    def test_arp_responder(self):
        router = Router.from_config(
            "Idle -> r :: ARPResponder(10.0.0.5 00:00:00:00:00:55)"
            " -> c :: Counter -> Discard;")
        router.start()
        captured = []
        router.element("c").push = lambda port, pkt: captured.append(pkt)
        request = ClickPacket.from_header(Ethernet(
            src="00:00:00:00:00:01", dst="ff:ff:ff:ff:ff:ff",
            type=Ethernet.ARP_TYPE,
            payload=ARP(opcode=ARP.REQUEST, hwsrc="00:00:00:00:00:01",
                        protosrc="10.0.0.1", protodst="10.0.0.5")))
        router.element("r").push(0, request)
        reply = Ethernet.unpack(captured[0].data).find(ARP)
        assert reply.opcode == ARP.REPLY
        assert str(reply.hwsrc) == "00:00:00:00:00:55"
        assert reply.protosrc == "10.0.0.5"

    def test_arp_responder_ignores_other_targets(self):
        router = Router.from_config(
            "Idle -> r :: ARPResponder(10.0.0.5 00:00:00:00:00:55)"
            " -> c :: Counter -> Discard;")
        router.start()
        request = ClickPacket.from_header(Ethernet(
            type=Ethernet.ARP_TYPE,
            payload=ARP(opcode=ARP.REQUEST, protodst="10.0.0.99")))
        router.element("r").push(0, request)
        assert router.read_handler("r.replies") == "0"
