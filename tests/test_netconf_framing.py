"""Tests for RFC 6242 framing and the in-memory transport."""

import pytest
from hypothesis import given, strategies as st

from repro.netconf import (ChunkedFramer, EomFramer, FramingError,
                           InMemoryTransport, TransportPair)
from repro.sim import Simulator


class TestEomFramer:
    def test_roundtrip(self):
        tx, rx = EomFramer(), EomFramer()
        assert rx.feed(tx.frame(b"<hello/>")) == [b"<hello/>"]

    def test_multiple_messages_one_buffer(self):
        tx, rx = EomFramer(), EomFramer()
        data = tx.frame(b"<a/>") + tx.frame(b"<b/>")
        assert rx.feed(data) == [b"<a/>", b"<b/>"]

    def test_split_delivery(self):
        tx, rx = EomFramer(), EomFramer()
        framed = tx.frame(b"<msg/>")
        messages = []
        for index in range(len(framed)):
            messages.extend(rx.feed(framed[index:index + 1]))
        assert messages == [b"<msg/>"]

    def test_payload_containing_delimiter_rejected(self):
        with pytest.raises(FramingError):
            EomFramer().frame(b"bad ]]>]]> payload")

    @given(st.lists(st.binary(min_size=1, max_size=50).filter(
        lambda b: b"]]>]]>" not in b), min_size=1, max_size=10))
    def test_roundtrip_property(self, payloads):
        tx, rx = EomFramer(), EomFramer()
        stream = b"".join(tx.frame(payload) for payload in payloads)
        assert rx.feed(stream) == payloads


class TestChunkedFramer:
    def test_roundtrip(self):
        tx, rx = ChunkedFramer(), ChunkedFramer()
        assert rx.feed(tx.frame(b"<rpc/>")) == [b"<rpc/>"]

    def test_wire_format(self):
        assert ChunkedFramer().frame(b"hello") == b"\n#5\nhello\n##\n"

    def test_split_delivery_byte_by_byte(self):
        tx, rx = ChunkedFramer(), ChunkedFramer()
        framed = tx.frame(b"<message-with-content/>")
        messages = []
        for index in range(len(framed)):
            messages.extend(rx.feed(framed[index:index + 1]))
        assert messages == [b"<message-with-content/>"]

    def test_multiple_chunks_one_message(self):
        rx = ChunkedFramer()
        wire = b"\n#3\nabc\n#3\ndef\n##\n"
        assert rx.feed(wire) == [b"abcdef"]

    def test_empty_message_rejected(self):
        with pytest.raises(FramingError):
            ChunkedFramer().frame(b"")

    def test_malformed_header_rejected(self):
        rx = ChunkedFramer()
        with pytest.raises(FramingError):
            rx.feed(b"this is not chunked framing!")

    def test_payload_with_hash_newlines_survives(self):
        tx, rx = ChunkedFramer(), ChunkedFramer()
        tricky = b"data\n#7\nmore\n##\ndata"
        assert rx.feed(tx.frame(tricky)) == [tricky]

    @given(st.lists(st.binary(min_size=1, max_size=80), min_size=1,
                    max_size=8))
    def test_roundtrip_property(self, payloads):
        tx, rx = ChunkedFramer(), ChunkedFramer()
        stream = b"".join(tx.frame(payload) for payload in payloads)
        assert rx.feed(stream) == payloads


class TestTransport:
    def test_pair_delivers_both_ways(self):
        sim = Simulator()
        pair = TransportPair(sim, latency=0.01)
        got_server, got_client = [], []
        pair.server.set_receiver(got_server.append)
        pair.client.set_receiver(got_client.append)
        pair.client.send(b"to-server")
        pair.server.send(b"to-client")
        sim.run()
        assert got_server == [b"to-server"]
        assert got_client == [b"to-client"]

    def test_latency_applied(self):
        sim = Simulator()
        pair = TransportPair(sim, latency=0.5)
        times = []
        pair.server.set_receiver(lambda data: times.append(sim.now))
        pair.client.send(b"x")
        sim.run()
        assert times == [pytest.approx(0.5)]

    def test_byte_rate_serialization(self):
        sim = Simulator()
        pair = TransportPair(sim, latency=0.0, byte_rate=100.0)
        times = []
        pair.server.set_receiver(lambda data: times.append(sim.now))
        pair.client.send(b"\x00" * 50)   # 0.5 s
        pair.client.send(b"\x00" * 50)   # queues behind: 1.0 s
        sim.run()
        assert times == [pytest.approx(0.5), pytest.approx(1.0)]

    def test_closed_transport_drops(self):
        sim = Simulator()
        pair = TransportPair(sim)
        got = []
        pair.server.set_receiver(got.append)
        pair.client.close()
        pair.client.send(b"late")
        sim.run()
        assert got == []

    def test_close_propagates_to_peer(self):
        sim = Simulator()
        pair = TransportPair(sim, latency=0.01)
        pair.client.close()
        sim.run()
        assert pair.server.closed

    def test_on_close_hook(self):
        sim = Simulator()
        pair = TransportPair(sim)
        fired = []
        pair.client.on_close = lambda: fired.append(True)
        pair.client.close()
        assert fired == [True]

    def test_ordering_preserved(self):
        sim = Simulator()
        pair = TransportPair(sim, latency=0.02)
        got = []
        pair.server.set_receiver(got.append)
        for index in range(5):
            pair.client.send(b"%d" % index)
        sim.run()
        assert got == [b"0", b"1", b"2", b"3", b"4"]
