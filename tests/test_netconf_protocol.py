"""Tests for NETCONF messages, datastores, server/client sessions."""

import xml.etree.ElementTree as ET

import pytest

from repro.netconf import (Datastore, DatastoreError, NetconfClient,
                           NetconfServer, RpcError, SessionError,
                           TransportPair)
from repro.netconf import messages as nc
from repro.sim import Simulator


def element(tag, text=None, ns="urn:test", children=()):
    node = ET.Element(nc.qn(tag, ns))
    if text is not None:
        node.text = text
    for child in children:
        node.append(child)
    return node


class TestMessages:
    def test_hello_roundtrip(self):
        hello = nc.build_hello(["cap-a", "cap-b"], session_id=7)
        kind, root = nc.parse_message(nc.to_xml(hello))
        assert kind == "hello"
        assert nc.hello_capabilities(root) == ["cap-a", "cap-b"]
        assert nc.hello_session_id(root) == 7

    def test_rpc_wrapping(self):
        rpc = nc.build_rpc(42, element("my-op"))
        kind, root = nc.parse_message(nc.to_xml(rpc))
        assert kind == "rpc"
        assert nc.rpc_message_id(root) == 42
        assert nc.local_name(nc.rpc_operation(root).tag) == "my-op"

    def test_rpc_reply_ok(self):
        reply = nc.build_rpc_reply(1)
        assert reply.find(nc.qn("ok")) is not None
        assert nc.parse_rpc_error(reply) is None

    def test_rpc_error_roundtrip(self):
        reply = nc.build_rpc_error(3, RpcError(
            error_type="application", tag="invalid-value",
            message="bad leaf"))
        error = nc.parse_rpc_error(reply)
        assert error.tag == "invalid-value"
        assert error.message == "bad leaf"

    def test_malformed_xml_rejected(self):
        from repro.netconf import NetconfError
        with pytest.raises(NetconfError):
            nc.parse_message(b"<unclosed>")

    def test_unknown_root_rejected(self):
        from repro.netconf import NetconfError
        with pytest.raises(NetconfError):
            nc.parse_message(b"<wat/>")

    def test_namespace_helpers(self):
        tag = nc.qn("thing", "urn:example")
        assert nc.local_name(tag) == "thing"
        assert nc.namespace_of(tag) == "urn:example"
        assert nc.namespace_of("bare") is None

    def test_rpc_requires_one_operation(self):
        from repro.netconf import NetconfError
        rpc = nc.build_rpc(1, element("op"))
        rpc.append(element("op2"))
        with pytest.raises(NetconfError):
            nc.rpc_operation(rpc)


class TestDatastore:
    def test_merge_creates(self):
        store = Datastore()
        store.edit(element("box", children=[element("item", "1")]))
        data = store.get()
        assert data.find("{urn:test}box/{urn:test}item").text == "1"

    def test_merge_overrides_text(self):
        store = Datastore()
        store.edit(element("leaf", "old"))
        store.edit(element("leaf", "new"))
        data = store.get()
        leaves = data.findall("{urn:test}leaf")
        assert len(leaves) == 1
        assert leaves[0].text == "new"

    def test_replace_swaps_subtree(self):
        store = Datastore()
        store.edit(element("box", children=[element("a", "1"),
                                            element("b", "2")]))
        replacement = element("box", children=[element("c", "3")])
        store.edit(replacement, default_operation="replace")
        box = store.get().find("{urn:test}box")
        assert [nc.local_name(child.tag) for child in box] == ["c"]

    def test_delete_removes(self):
        store = Datastore()
        store.edit(element("leaf", "x"))
        victim = element("leaf")
        victim.set(nc.qn("operation"), "delete")
        store.edit(victim)
        assert store.get().find("{urn:test}leaf") is None

    def test_delete_missing_errors(self):
        store = Datastore()
        victim = element("ghost")
        victim.set(nc.qn("operation"), "delete")
        with pytest.raises(DatastoreError):
            store.edit(victim)

    def test_remove_missing_is_ok(self):
        store = Datastore()
        victim = element("ghost")
        victim.set(nc.qn("operation"), "remove")
        store.edit(victim)  # no error

    def test_create_duplicate_errors(self):
        store = Datastore()
        store.edit(element("leaf", "x"))
        duplicate = element("leaf", "y")
        duplicate.set(nc.qn("operation"), "create")
        with pytest.raises(DatastoreError):
            store.edit(duplicate)

    def test_list_entries_matched_by_key(self):
        store = Datastore(list_keys={"vnf": "id"})
        store.edit(element("vnf", children=[element("id", "a"),
                                            element("state", "UP")]))
        store.edit(element("vnf", children=[element("id", "b"),
                                            element("state", "UP")]))
        # update entry "a" only
        store.edit(element("vnf", children=[element("id", "a"),
                                            element("state", "DOWN")]))
        entries = store.get().findall("{urn:test}vnf")
        assert len(entries) == 2
        states = {entry.find("{urn:test}id").text:
                  entry.find("{urn:test}state").text
                  for entry in entries}
        assert states == {"a": "DOWN", "b": "UP"}

    def test_subtree_filter(self):
        store = Datastore()
        store.edit(element("alpha", "1"))
        store.edit(element("beta", "2"))
        filtered = store.get_subtree(element("alpha"))
        assert filtered.find("{urn:test}alpha") is not None
        assert filtered.find("{urn:test}beta") is None

    def test_copy_from(self):
        running = Datastore("running")
        candidate = Datastore("candidate")
        candidate.edit(element("staged", "yes"))
        running.copy_from(candidate)
        assert running.get().find("{urn:test}staged").text == "yes"
        # deep copy: further candidate edits don't leak
        candidate.edit(element("staged", "no"))
        assert running.get().find("{urn:test}staged").text == "yes"


def connected_pair(sim=None, **server_kwargs):
    sim = sim or Simulator()
    pair = TransportPair(sim, latency=0.001)
    server = NetconfServer(pair.server, **server_kwargs)
    client = NetconfClient(pair.client)
    client.wait_connected()
    # wait_connected returns on the server->client hello; give the
    # client->server hello (still in flight) time to land too.
    sim.run(until=sim.now + 0.1)
    return sim, server, client


class TestSession:
    def test_hello_exchange(self):
        _sim, server, client = connected_pair()
        assert client.session_id == server.session_id
        assert nc.CAP_BASE_10 in client.server_capabilities
        assert server.peer_capabilities is not None

    def test_chunked_upgrade_when_both_support_11(self):
        from repro.netconf.framing import ChunkedFramer
        _sim, server, client = connected_pair()
        assert isinstance(client._tx_framer, ChunkedFramer)
        assert isinstance(server._tx_framer, ChunkedFramer)

    def test_stays_eom_when_server_is_10_only(self):
        from repro.netconf.framing import EomFramer
        sim = Simulator()
        pair = TransportPair(sim)
        server = NetconfServer(pair.server,
                               capabilities=[nc.CAP_BASE_10])
        client = NetconfClient(pair.client)
        client.wait_connected()
        assert isinstance(client._tx_framer, EomFramer)
        # and RPCs still work
        reply = client.get().result(sim)
        assert reply is not None

    def test_rpc_before_hello_rejected(self):
        sim = Simulator()
        pair = TransportPair(sim)
        NetconfServer(pair.server)
        client = NetconfClient(pair.client)
        with pytest.raises(SessionError):
            client.request(nc.build_get())

    def test_get_roundtrip(self):
        sim, server, client = connected_pair()
        server.datastores["running"].edit(element("status", "fine"))
        reply = client.get().result(sim)
        data = reply.find(nc.qn("data"))
        assert data.find("{urn:test}status").text == "fine"

    def test_edit_config_then_get_config(self):
        sim, _server, client = connected_pair()
        client.edit_config(element("knob", "11")).result(sim)
        reply = client.get_config().result(sim)
        data = reply.find(nc.qn("data"))
        assert data.find("{urn:test}knob").text == "11"

    def test_get_with_filter(self):
        sim, server, client = connected_pair()
        server.datastores["running"].edit(element("a", "1"))
        server.datastores["running"].edit(element("b", "2"))
        reply = client.get(element("a")).result(sim)
        data = reply.find(nc.qn("data"))
        assert data.find("{urn:test}a") is not None
        assert data.find("{urn:test}b") is None

    def test_unknown_rpc_returns_error(self):
        sim, _server, client = connected_pair()
        with pytest.raises(RpcError) as exc:
            client.rpc("fly-to-the-moon", "urn:test").result(sim)
        assert exc.value.tag == "operation-not-supported"

    def test_custom_rpc_dispatch(self):
        sim, server, client = connected_pair()

        def add(operation):
            values = [int(child.text) for child in operation]
            result = element("sum", str(sum(values)))
            return [result]

        server.register_rpc("add", add)
        reply = client.rpc("add", "urn:test",
                           {"x": "2", "y": "3"}).result(sim)
        assert reply.find("{urn:test}sum").text == "5"

    def test_handler_exception_becomes_rpc_error(self):
        sim, server, client = connected_pair()

        def boom(_operation):
            raise RpcError(tag="operation-failed", message="kaput")

        server.register_rpc("boom", boom)
        with pytest.raises(RpcError) as exc:
            client.rpc("boom", "urn:test").result(sim)
        assert exc.value.message == "kaput"

    def test_concurrent_rpcs_matched_by_id(self):
        sim, server, client = connected_pair()
        server.register_rpc(
            "echo", lambda op: [element("v", op[0].text)])
        op1 = ET.Element(nc.qn("echo", "urn:test"))
        ET.SubElement(op1, nc.qn("v", "urn:test")).text = "one"
        op2 = ET.Element(nc.qn("echo", "urn:test"))
        ET.SubElement(op2, nc.qn("v", "urn:test")).text = "two"
        pending1 = client.request(op1)
        pending2 = client.request(op2)
        sim.run(until=sim.now + 1.0)
        assert pending1.reply.find("{urn:test}v").text == "one"
        assert pending2.reply.find("{urn:test}v").text == "two"

    def test_close_session(self):
        sim, server, client = connected_pair()
        client.close().result(sim)
        sim.run(until=sim.now + 0.1)
        assert server.closed
        assert client.closed
        with pytest.raises(SessionError):
            client.get()

    def test_on_done_callback(self):
        sim, _server, client = connected_pair()
        done = []
        client.get().on_done(lambda pending: done.append(pending))
        sim.run(until=sim.now + 1.0)
        assert len(done) == 1
        assert done[0].done

    def test_result_timeout(self):
        from repro.netconf import NetconfError
        sim = Simulator()
        pair = TransportPair(sim)
        NetconfServer(pair.server)
        client = NetconfClient(pair.client)
        client.wait_connected()
        pair.client.closed = True  # silently break the pipe
        pending = client.get()
        with pytest.raises(NetconfError):
            pending.result(sim, timeout=1.0)

    def test_rpc_count_tracked(self):
        sim, server, client = connected_pair()
        client.get().result(sim)
        client.get().result(sim)
        assert server.rpc_count == 2
        assert client.rpcs_sent == 2
