"""Property-based tests (hypothesis) on the core data structures."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.nffg import ResourceView
from repro.netconf.framing import ChunkedFramer, EomFramer
from repro.openflow import FlowEntry, FlowTable, Match, Output
from repro.packet import Ethernet, IPv4, UDP
from repro.sim import Simulator


# -- simulator ordering -------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1000.0,
                          allow_nan=False), min_size=1, max_size=50))
def test_simulator_fires_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=100.0,
                                    allow_nan=False),
                          st.booleans()),
                min_size=1, max_size=40))
def test_simulator_cancellation_is_exact(entries):
    sim = Simulator()
    fired = []
    events = []
    for index, (delay, cancel) in enumerate(entries):
        events.append((sim.schedule(delay, fired.append, index), cancel))
    for event, cancel in events:
        if cancel:
            event.cancel()
    sim.run()
    expected = {index for index, (_delay, cancel) in enumerate(entries)
                if not cancel}
    assert set(fired) == expected


# -- flow table vs brute force ------------------------------------------


def _random_match(rng):
    kwargs = {}
    if rng.random() < 0.5:
        kwargs["in_port"] = rng.randint(1, 3)
    if rng.random() < 0.5:
        kwargs["nw_src"] = "10.0.0.%d" % rng.randint(1, 3)
    if rng.random() < 0.5:
        kwargs["tp_dst"] = rng.choice([80, 443])
    return Match(**kwargs)


@given(st.integers(min_value=0, max_value=2 ** 32 - 1),
       st.integers(min_value=1, max_value=3),
       st.integers(min_value=1, max_value=3),
       st.integers(min_value=0, max_value=1))
@settings(max_examples=60)
def test_flowtable_lookup_matches_brute_force(seed, in_port, host_octet,
                                              port_choice):
    rng = random.Random(seed)
    table = FlowTable()
    entries = []
    for index in range(rng.randint(1, 10)):
        entry = FlowEntry(_random_match(rng), [Output(index)],
                          priority=rng.randint(0, 5))
        table.add(entry)
    # the table may have deduplicated (same match+priority replaces)
    entries = table.entries
    packet = Ethernet(
        src="00:00:00:00:00:01", dst="00:00:00:00:00:02",
        type=Ethernet.IP_TYPE,
        payload=IPv4(srcip="10.0.0.%d" % host_octet, dstip="10.0.0.9",
                     protocol=IPv4.UDP_PROTOCOL,
                     payload=UDP(srcport=1111,
                                 dstport=[80, 443][port_choice]))).pack()
    result = table.lookup(packet, in_port, now=0.0)
    brute = [entry for entry in entries
             if entry.match.matches_packet(packet, in_port)]
    if not brute:
        assert result is None
    else:
        best_priority = max(entry.priority for entry in brute)
        assert result is not None
        assert result.priority == best_priority
        assert result.match.matches_packet(packet, in_port)


# -- framing under arbitrary segmentation -----------------------------------


@given(st.lists(st.binary(min_size=1, max_size=60), min_size=1,
                max_size=6),
       st.lists(st.integers(min_value=1, max_value=64), max_size=30))
def test_chunked_framer_survives_any_segmentation(payloads, cut_sizes):
    tx, rx = ChunkedFramer(), ChunkedFramer()
    stream = b"".join(tx.frame(payload) for payload in payloads)
    received = []
    position = 0
    cuts = list(cut_sizes) or [len(stream)]
    cut_index = 0
    while position < len(stream):
        size = cuts[cut_index % len(cuts)]
        cut_index += 1
        received.extend(rx.feed(stream[position:position + size]))
        position += size
    assert received == payloads


@given(st.lists(st.binary(min_size=1, max_size=60).filter(
    lambda data: b"]]>]]>" not in data), min_size=1, max_size=6),
    st.integers(min_value=1, max_value=7))
def test_eom_framer_survives_fixed_segmentation(payloads, chunk):
    tx, rx = EomFramer(), EomFramer()
    stream = b"".join(tx.frame(payload) for payload in payloads)
    received = []
    for start in range(0, len(stream), chunk):
        received.extend(rx.feed(stream[start:start + chunk]))
    assert received == payloads


# -- resource view conservation -------------------------------------------


@given(st.lists(st.tuples(st.floats(min_value=0.01, max_value=2.0),
                          st.floats(min_value=1.0, max_value=512.0),
                          st.integers(min_value=0, max_value=3)),
                min_size=1, max_size=20))
def test_resource_view_conservation(demands):
    view = ResourceView()
    view.add_container("nc", cpu=100.0, mem=100000.0, ports=100)
    granted = []
    for index, (cpu, mem, ports) in enumerate(demands):
        if view.container_fits("nc", cpu, mem, ports):
            view.reserve_container("nc", cpu, mem, ports)
            granted.append((cpu, mem, ports))
    data = view.graph.nodes["nc"]
    assert data["cpu_used"] <= data["cpu"] + 1e-9
    assert abs(data["cpu_used"] - sum(g[0] for g in granted)) < 1e-6
    assert data["ports_used"] == sum(g[2] for g in granted)
    for cpu, mem, ports in granted:
        view.release_container("nc", cpu, mem, ports)
    assert view.graph.nodes["nc"]["cpu_used"] < 1e-6
    assert view.graph.nodes["nc"]["ports_used"] == 0


@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
@settings(max_examples=30)
def test_shortest_path_is_optimal(seed):
    """Dijkstra's result never beats a brute-force enumeration."""
    import itertools
    rng = random.Random(seed)
    view = ResourceView()
    names = ["s%d" % index for index in range(5)]
    for index, name in enumerate(names):
        view.add_switch(name, index + 1)
    edges = []
    for a, b in itertools.combinations(names, 2):
        if rng.random() < 0.7:
            delay = rng.uniform(0.001, 0.01)
            view.add_link(a, b, delay=delay)
            edges.append((a, b, delay))
    path = view.shortest_path("s0", "s4")
    if path is None:
        return
    found_delay = view.path_delay(path)
    # brute force over all simple paths
    import networkx as nx
    best = min(view.path_delay(candidate) for candidate in
               nx.all_simple_paths(view.graph, "s0", "s4"))
    assert found_delay <= best + 1e-12


# -- click packet paint roundtrip ------------------------------------------


@given(st.binary(max_size=200), st.integers(min_value=0, max_value=255))
def test_click_packet_clone_preserves_all(data, paint):
    from repro.click import ClickPacket
    packet = ClickPacket(data, timestamp=1.5)
    packet.paint = paint
    clone = packet.clone()
    assert clone.data == data
    assert clone.paint == paint
    assert clone.timestamp == 1.5


# -- match subset relation is consistent with matching ------------------------


@given(st.integers(min_value=0, max_value=2 ** 32 - 1))
@settings(max_examples=60)
def test_match_subset_implication(seed):
    """If A.is_subset_of(B), every packet matching A also matches B."""
    rng = random.Random(seed)
    match_a = _random_match(rng)
    match_b = _random_match(rng)
    if not match_a.is_subset_of(match_b):
        return
    for in_port in (1, 2, 3):
        for octet in (1, 2, 3):
            for dport in (80, 443):
                packet = Ethernet(
                    type=Ethernet.IP_TYPE,
                    payload=IPv4(srcip="10.0.0.%d" % octet,
                                 dstip="10.0.0.9",
                                 protocol=IPv4.UDP_PROTOCOL,
                                 payload=UDP(srcport=1,
                                             dstport=dport))).pack()
                if match_a.matches_packet(packet, in_port):
                    assert match_b.matches_packet(packet, in_port)
