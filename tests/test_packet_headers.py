"""Tests for the packet header codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.packet import (ARP, Ethernet, ICMP, IPv4, LLDP, TCP, UDP, Vlan)
from repro.packet.base import PacketError, checksum


class TestChecksum:
    def test_rfc1071_example(self):
        # validate the fold: sum of data plus checksum is 0xFFFF
        data = b"\x45\x00\x00\x3c\x1c\x46\x40\x00\x40\x06" \
               b"\x00\x00\xac\x10\x0a\x63\xac\x10\x0a\x0c"
        value = checksum(data)
        patched = data[:10] + value.to_bytes(2, "big") + data[12:]
        assert checksum(patched) == 0

    def test_odd_length_padded(self):
        assert checksum(b"\x01") == checksum(b"\x01\x00")


class TestEthernet:
    def test_roundtrip_with_raw_payload(self):
        frame = Ethernet(dst="00:00:00:00:00:02", src="00:00:00:00:00:01",
                         type=0x1234, payload=b"hello")
        decoded = Ethernet.unpack(frame.pack())
        assert str(decoded.src) == "00:00:00:00:00:01"
        assert str(decoded.dst) == "00:00:00:00:00:02"
        assert decoded.type == 0x1234
        assert decoded.payload == b"hello"

    def test_too_short_rejected(self):
        with pytest.raises(PacketError):
            Ethernet.unpack(b"\x00" * 13)

    def test_ip_payload_parsed(self):
        frame = Ethernet(type=Ethernet.IP_TYPE,
                         payload=IPv4(srcip="1.1.1.1", dstip="2.2.2.2"))
        decoded = Ethernet.unpack(frame.pack())
        assert isinstance(decoded.payload, IPv4)

    def test_unknown_ethertype_stays_raw(self):
        frame = Ethernet(type=0x9999, payload=b"\x01\x02")
        decoded = Ethernet.unpack(frame.pack())
        assert decoded.payload == b"\x01\x02"

    def test_find_traverses_chain(self):
        frame = Ethernet(type=Ethernet.IP_TYPE,
                         payload=IPv4(protocol=IPv4.UDP_PROTOCOL,
                                      payload=UDP(srcport=1, dstport=2,
                                                  payload=b"x")))
        assert frame.find(UDP) is not None
        assert frame.find(TCP) is None

    def test_raw_payload_innermost_bytes(self):
        frame = Ethernet(type=Ethernet.IP_TYPE,
                         payload=IPv4(protocol=IPv4.UDP_PROTOCOL,
                                      payload=UDP(payload=b"inner")))
        assert frame.raw_payload() == b"inner"


class TestVlan:
    def test_roundtrip(self):
        frame = Ethernet(type=Ethernet.VLAN_TYPE,
                         payload=Vlan(vid=42, pcp=3,
                                      type=Ethernet.IP_TYPE,
                                      payload=IPv4()))
        decoded = Ethernet.unpack(frame.pack())
        tag = decoded.find(Vlan)
        assert tag.vid == 42
        assert tag.pcp == 3
        assert isinstance(tag.payload, IPv4)

    def test_effective_type_skips_tag(self):
        frame = Ethernet(type=Ethernet.VLAN_TYPE,
                         payload=Vlan(vid=1, type=Ethernet.ARP_TYPE))
        assert frame.effective_type() == Ethernet.ARP_TYPE

    def test_vid_out_of_range(self):
        with pytest.raises(ValueError):
            Vlan(vid=4096)


class TestARP:
    def test_roundtrip(self):
        arp = ARP(opcode=ARP.REQUEST, hwsrc="00:00:00:00:00:01",
                  protosrc="10.0.0.1", protodst="10.0.0.2")
        decoded = ARP.unpack(arp.pack())
        assert decoded.opcode == ARP.REQUEST
        assert decoded.protodst == "10.0.0.2"
        assert decoded.hwsrc == "00:00:00:00:00:01"

    def test_within_ethernet(self):
        frame = Ethernet(type=Ethernet.ARP_TYPE,
                         payload=ARP(opcode=ARP.REPLY))
        assert Ethernet.unpack(frame.pack()).find(ARP).opcode == ARP.REPLY

    def test_short_buffer_rejected(self):
        with pytest.raises(PacketError):
            ARP.unpack(b"\x00" * 27)


class TestIPv4:
    def test_roundtrip_fields(self):
        packet = IPv4(srcip="10.0.0.1", dstip="10.0.0.2", protocol=17,
                      ttl=33, tos=0x10, id=777, payload=UDP(payload=b"p"))
        decoded = IPv4.unpack(packet.pack())
        assert decoded.srcip == "10.0.0.1"
        assert decoded.dstip == "10.0.0.2"
        assert decoded.protocol == 17
        assert decoded.ttl == 33
        assert decoded.tos == 0x10
        assert decoded.id == 777

    def test_checksum_verified_on_unpack(self):
        wire = bytearray(IPv4(srcip="1.1.1.1", dstip="2.2.2.2").pack())
        wire[8] ^= 0xFF  # corrupt the TTL
        with pytest.raises(PacketError):
            IPv4.unpack(bytes(wire))

    def test_total_length_respected(self):
        packet = IPv4(payload=b"abc")
        wire = packet.pack() + b"trailing-garbage"
        decoded = IPv4.unpack(wire)
        assert decoded.payload == b"abc"

    def test_truncated_rejected(self):
        wire = IPv4(payload=b"abcdef").pack()
        with pytest.raises(PacketError):
            IPv4.unpack(wire[:-3])

    def test_non_v4_rejected(self):
        wire = bytearray(IPv4().pack())
        wire[0] = (6 << 4) | 5
        with pytest.raises(PacketError):
            IPv4.unpack(bytes(wire))

    def test_decremented(self):
        packet = IPv4(ttl=2)
        assert packet.decremented().ttl == 1

    def test_decrement_zero_ttl_rejected(self):
        with pytest.raises(PacketError):
            IPv4(ttl=0).decremented()

    def test_icmp_payload_parsed(self):
        packet = IPv4(protocol=IPv4.ICMP_PROTOCOL, payload=ICMP())
        assert isinstance(IPv4.unpack(packet.pack()).payload, ICMP)


class TestICMP:
    def test_echo_roundtrip(self):
        echo = ICMP(type=ICMP.TYPE_ECHO_REQUEST, id=7, seq=3,
                    payload=b"ping-data")
        decoded = ICMP.unpack(echo.pack())
        assert decoded.is_echo_request
        assert decoded.id == 7
        assert decoded.seq == 3
        assert decoded.raw_payload() == b"ping-data"

    def test_checksum_verified(self):
        wire = bytearray(ICMP(id=1, seq=1).pack())
        wire[4] ^= 0x55
        with pytest.raises(PacketError):
            ICMP.unpack(bytes(wire))

    def test_make_reply_swaps_type_keeps_id_seq(self):
        request = ICMP(type=ICMP.TYPE_ECHO_REQUEST, id=9, seq=4,
                       payload=b"x")
        reply = request.make_reply()
        assert reply.is_echo_reply
        assert (reply.id, reply.seq) == (9, 4)
        assert reply.payload == b"x"

    def test_reply_to_non_request_rejected(self):
        with pytest.raises(PacketError):
            ICMP(type=ICMP.TYPE_ECHO_REPLY).make_reply()


class TestUDP:
    def test_roundtrip(self):
        datagram = UDP(srcport=1234, dstport=53, payload=b"query")
        decoded = UDP.unpack(datagram.pack())
        assert decoded.srcport == 1234
        assert decoded.dstport == 53
        assert decoded.raw_payload() == b"query"

    def test_length_field_trims_trailing_bytes(self):
        wire = UDP(payload=b"abc").pack() + b"junk"
        assert UDP.unpack(wire).raw_payload() == b"abc"

    def test_bad_length_rejected(self):
        wire = bytearray(UDP(payload=b"abc").pack())
        wire[4:6] = (3).to_bytes(2, "big")  # below minimum
        with pytest.raises(PacketError):
            UDP.unpack(bytes(wire))

    def test_port_range_validated(self):
        with pytest.raises(ValueError):
            UDP(srcport=70000)

    @given(st.binary(max_size=64),
           st.integers(min_value=0, max_value=65535),
           st.integers(min_value=0, max_value=65535))
    def test_roundtrip_property(self, payload, sport, dport):
        decoded = UDP.unpack(UDP(srcport=sport, dstport=dport,
                                 payload=payload).pack())
        assert decoded.srcport == sport
        assert decoded.dstport == dport
        assert decoded.raw_payload() == payload


class TestTCP:
    def test_roundtrip(self):
        segment = TCP(srcport=80, dstport=4321, seq=1000, ack=2000,
                      flags=TCP.SYN | TCP.ACK, window=512,
                      payload=b"data")
        decoded = TCP.unpack(segment.pack())
        assert decoded.srcport == 80
        assert decoded.seq == 1000
        assert decoded.ack == 2000
        assert decoded.flags == TCP.SYN | TCP.ACK
        assert decoded.window == 512
        assert decoded.raw_payload() == b"data"

    def test_flag_names(self):
        assert TCP(flags=TCP.SYN | TCP.ACK).flag_names() == "SYN|ACK"
        assert TCP(flags=0).flag_names() == "none"

    def test_short_buffer_rejected(self):
        with pytest.raises(PacketError):
            TCP.unpack(b"\x00" * 19)


class TestLLDP:
    def test_discovery_roundtrip(self):
        frame = Ethernet(type=Ethernet.LLDP_TYPE,
                         payload=LLDP.discovery_frame(17, 4, ttl=99))
        lldp = Ethernet.unpack(frame.pack()).find(LLDP)
        assert lldp.discovery_origin() == (17, 4)

    def test_non_discovery_returns_none(self):
        from repro.packet import ChassisTLV, PortTLV, TTLTLV
        pdu = LLDP([ChassisTLV("not-a-dpid"), PortTLV("1"), TTLTLV(120)])
        decoded = LLDP.unpack(pdu.pack())
        assert decoded.discovery_origin() is None

    def test_truncated_rejected(self):
        wire = LLDP.discovery_frame(1, 1).pack()
        with pytest.raises(PacketError):
            LLDP.unpack(wire[:3])

    def test_full_stack_roundtrip(self):
        inner = Ethernet(
            src="00:00:00:00:00:0a", dst="00:00:00:00:00:0b",
            type=Ethernet.IP_TYPE,
            payload=IPv4(srcip="10.0.0.1", dstip="10.0.0.2",
                         protocol=IPv4.TCP_PROTOCOL,
                         payload=TCP(srcport=1, dstport=80,
                                     flags=TCP.SYN, payload=b"GET /")))
        decoded = Ethernet.unpack(inner.pack())
        assert decoded.find(TCP).raw_payload() == b"GET /"
