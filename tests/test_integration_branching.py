"""End-to-end deployment of a *branching* service graph: a load
balancer splits chain traffic across two parallel firewalls which merge
into a monitor before the sink SAP.

This exercises the orchestrator's per-SG-link segment installation with
multiple egress devices (out0/out1) and fan-in at a shared ingress.
"""

import pytest

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 8, "mem": 8192},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "h2", "to": "s1", "delay": 0.001},
    ] + [
        {"from": "nc1", "to": "s1", "delay": 0.0005} for _ in range(12)
    ],
}

BRANCHING_SG = {
    "name": "lb-graph",
    "saps": ["h1", "h2"],
    "vnfs": [
        {"name": "lb", "type": "load_balancer"},
        {"name": "fwa", "type": "forwarder"},
        {"name": "fwb", "type": "forwarder"},
        {"name": "join", "type": "forwarder"},
    ],
    "links": [
        {"from": "h1", "to": "lb"},
        {"from": "lb", "to": "fwa"},
        {"from": "lb", "to": "fwb"},
        {"from": "fwa", "to": "join"},
        {"from": "fwb", "to": "join"},
        {"from": "join", "to": "h2"},
    ],
}


@pytest.fixture
def escape():
    framework = ESCAPE.from_topology(load_topology(TOPOLOGY),
                                     discovery_interval=3600.0)
    framework.start()
    return framework


class TestBranchingDeployment:
    def test_deploys_with_all_segments(self, escape):
        chain = escape.deploy_service(BRANCHING_SG)
        assert len(chain.vnfs) == 4
        # 6 SG links + 1 direct return path
        assert len(chain.path_ids) == 7

    def test_traffic_splits_and_merges(self, escape):
        chain = escape.deploy_service(BRANCHING_SG)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        before = h2.udp_rx_count
        for index in range(10):
            h1.send_udp(h2.ip, 5001, b"packet-%d" % index)
            escape.run(0.05)
        escape.run(1.0)
        assert h2.udp_rx_count - before == 10
        # the balancer spread the packets over both branches
        branch_a = int(chain.read_handler("fwa", "cnt_in.count"))
        branch_b = int(chain.read_handler("fwb", "cnt_in.count"))
        assert branch_a == 5
        assert branch_b == 5
        # and the join saw everything
        assert int(chain.read_handler("join", "cnt_in.count")) == 10

    def test_lb_counters_confirm_split(self, escape):
        chain = escape.deploy_service(BRANCHING_SG)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        for _ in range(6):
            h1.send_udp(h2.ip, 5001, b"x")
            escape.run(0.05)
        escape.run(0.5)
        assert int(chain.read_handler("lb", "cnt_a.count")) == 3
        assert int(chain.read_handler("lb", "cnt_b.count")) == 3

    def test_ping_through_branching_graph(self, escape):
        escape.deploy_service(BRANCHING_SG)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        result = h1.ping(h2.ip, count=4, interval=0.2)
        escape.run(3.0)
        assert result.received == 4

    def test_undeploy_cleans_everything(self, escape):
        chain = escape.deploy_service(BRANCHING_SG)
        chain.undeploy()
        escape.run(0.1)
        assert escape.net.get("nc1").vnfs == {}
        assert escape.steering.paths == {}
        snapshot = escape.orchestrator.view.snapshot()["nc1"]
        assert snapshot["cpu_used"] == pytest.approx(0.0)
        assert snapshot["ports_used"] == 0
