"""Tests for the structured event log (repro.telemetry.events)."""

import json

import pytest

from repro.sim import Simulator
from repro.telemetry import (DEBUG, ERROR, EventError, EventLog, INFO,
                             Telemetry, WARN)
from repro.telemetry.events import severity_rank
from repro.telemetry.trace import Tracer


class TestEmit:
    def test_emit_records_fields(self):
        log = EventLog()
        event = log.emit(WARN, "core.sla", "sla.warn", "chain degraded",
                         chain="c1")
        assert event.severity == WARN
        assert event.source == "core.sla"
        assert event.name == "sla.warn"
        assert event.message == "chain degraded"
        assert event.tags == {"chain": "c1"}
        assert len(log) == 1

    def test_helpers_map_to_severities(self):
        log = EventLog()
        log.debug("a.b", "n1")
        log.info("a.b", "n2")
        log.warn("a.b", "n3")
        log.error("a.b", "n4")
        assert [event.severity for event in log.events()] \
            == [DEBUG, INFO, WARN, ERROR]

    def test_sim_clock_stamps_time(self):
        sim = Simulator()
        log = EventLog(clock=lambda: sim.now)
        sim.schedule(2.5, lambda: log.info("a.b", "tick"))
        sim.run()
        assert log.events()[0].time == pytest.approx(2.5)

    def test_unknown_severity_rejected(self):
        log = EventLog()
        with pytest.raises(EventError):
            log.emit("FATAL", "a.b", "boom")
        assert severity_rank(ERROR) > severity_rank(DEBUG)

    def test_min_severity_threshold_suppresses(self):
        log = EventLog(min_severity=WARN)
        assert log.emit(DEBUG, "a.b", "quiet") is None
        assert log.emit(WARN, "a.b", "loud") is not None
        assert len(log) == 1
        assert log.suppressed == 1


class TestRing:
    def test_capacity_evicts_oldest(self):
        log = EventLog(capacity=3)
        for index in range(5):
            log.info("a.b", "e%d" % index)
        assert len(log) == 3
        assert log.evicted == 2
        assert [event.name for event in log.events()] \
            == ["e2", "e3", "e4"]

    def test_counts_survive_eviction(self):
        log = EventLog(capacity=2)
        for _ in range(4):
            log.warn("a.b", "w")
        assert log.counts()[WARN] == 4


class TestTraceCorrelation:
    def test_event_inside_span_gets_trace_id(self):
        tracer = Tracer()
        log = EventLog(tracer=tracer)
        with tracer.span("deploy") as span:
            event = log.info("core", "step")
        assert event.trace_id == span.span_id
        outside = log.info("core", "later")
        assert outside.trace_id is None

    def test_explicit_trace_id_wins(self):
        tracer = Tracer()
        log = EventLog(tracer=tracer)
        with tracer.span("deploy"):
            event = log.info("core", "step", trace_id=42)
        assert event.trace_id == 42

    def test_query_by_trace_id(self):
        tracer = Tracer()
        log = EventLog(tracer=tracer)
        with tracer.span("one") as span:
            log.info("core", "inside")
        log.info("core", "outside")
        selected = log.query(trace_id=span.span_id)
        assert [event.name for event in selected] == ["inside"]


class TestQuery:
    @pytest.fixture
    def log(self):
        log = EventLog()
        log.debug("netem.link", "link.stat")
        log.info("core.orchestrator", "orchestrator.deployed")
        log.warn("core.sla", "sla.warn")
        log.error("core.sla", "sla.violated")
        return log

    def test_min_severity(self, log):
        names = [event.name for event in log.query(min_severity=WARN)]
        assert names == ["sla.warn", "sla.violated"]

    def test_source_prefix_match(self, log):
        assert len(log.query(source="core")) == 3
        assert len(log.query(source="core.sla")) == 2
        assert log.query(source="cor") == []

    def test_name_and_limit(self, log):
        assert len(log.query(name="sla.warn")) == 1
        assert len(log.query(limit=2)) == 2


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        log = EventLog()
        log.info("core.sla", "sla.ok", "recovered", chain="c1")
        log.error("core.sla", "sla.violated", "degraded", chain="c1")
        path = tmp_path / "events.jsonl"
        assert log.write_jsonl(str(path)) == 2
        lines = path.read_text().strip().splitlines()
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["name"] == "sla.ok"
        assert parsed[1]["severity"] == ERROR
        assert parsed[1]["tags"]["chain"] == "c1"

    def test_subscribers_see_live_events(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.warn("a.b", "w1")
        assert [event.name for event in seen] == ["w1"]


class TestTelemetryBundle:
    def test_bundle_wires_clock_and_tracer(self):
        sim = Simulator()
        telemetry = Telemetry(sim)
        sim.schedule(1.0, lambda: telemetry.events.info("a.b", "later"))
        sim.run()
        assert telemetry.events.events()[0].time == pytest.approx(1.0)
        with telemetry.tracer.span("op") as span:
            event = telemetry.events.info("a.b", "inside")
        assert event.trace_id == span.span_id

    def test_event_counts_exported_as_gauges(self):
        telemetry = Telemetry()
        telemetry.events.warn("a.b", "w")
        snapshot = telemetry.metrics.snapshot()
        assert snapshot['telemetry.events.emitted{severity=warn}'
                        ]["value"] == 1

    def test_snapshot_includes_events(self):
        telemetry = Telemetry()
        telemetry.events.info("a.b", "hello")
        snapshot = telemetry.snapshot()
        assert snapshot["events"][0]["name"] == "hello"
