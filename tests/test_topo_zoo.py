"""Unit tests for repro.scenario.zoo — the parameterised substrate
generators (fat-tree, Waxman, Abilene WAN) and the declarative
build_topology dispatcher.
"""

import pytest

from repro.netem import Network
from repro.scenario.zoo import (ABILENE_POPS, ABILENE_TRUNKS, FatTreeTopo,
                                TOPOLOGY_KINDS, WanTopo, WaxmanTopo,
                                build_topology)


class TestFatTreeTopo:
    def test_k4_counts(self):
        topo = FatTreeTopo(k=4, containers_per_pod=1, container_ports=4)
        # k^3/4 hosts, k^2/4 cores + k pods * k agg/edge switches
        assert len(topo.hosts()) == 16
        assert len(topo.switches()) == 4 + 4 * 4
        assert len(topo.vnf_containers()) == 4
        # 16 host + 16 edge-agg + 16 agg-core + 4*4 container links
        assert len(topo.links) == 16 + 16 + 16 + 16

    def test_k2_counts(self):
        topo = FatTreeTopo(k=2, containers_per_pod=1, container_ports=2)
        assert len(topo.hosts()) == 2
        assert len(topo.switches()) == 1 + 2 * 2
        assert len(topo.vnf_containers()) == 2

    def test_odd_or_small_k_rejected(self):
        with pytest.raises(ValueError, match="even integer"):
            FatTreeTopo(k=3)
        with pytest.raises(ValueError, match="even integer"):
            FatTreeTopo(k=0)

    def test_too_many_containers_rejected(self):
        with pytest.raises(ValueError, match="containers_per_pod"):
            FatTreeTopo(k=2, containers_per_pod=2)

    def test_container_gets_parallel_links(self):
        topo = FatTreeTopo(k=2, containers_per_pod=1, container_ports=3)
        nc_links = [link for link in topo.links if link[0] == "nc1"]
        assert len(nc_links) == 3
        assert len({link[1] for link in nc_links}) == 1

    def test_tier_opts_override(self):
        topo = FatTreeTopo(k=2, tier_opts={"host": {"delay": 0.042}})
        host_links = [opts for n1, _n2, opts in topo.links
                      if n1.startswith("h")]
        assert host_links
        assert all(opts["delay"] == 0.042 for opts in host_links)

    def test_builds_into_network(self):
        net = Network.build(FatTreeTopo(k=2))
        assert len(net.hosts()) == 2
        assert len(net.switches()) == 5


class TestWaxmanTopo:
    def test_counts_and_containers(self):
        topo = WaxmanTopo(n=6, seed=3, hosts_per_switch=2,
                          container_every=2, container_ports=2)
        assert len(topo.switches()) == 6
        assert len(topo.hosts()) == 12
        assert len(topo.vnf_containers()) == 3  # switches 0, 2, 4

    def test_same_seed_same_graph(self):
        one = WaxmanTopo(n=10, seed=7)
        two = WaxmanTopo(n=10, seed=7)
        assert one.links == two.links
        assert one.nodes == two.nodes

    def test_connectivity_backbone(self):
        # alpha tiny -> almost no random links; the spanning chain
        # must still connect every switch
        topo = WaxmanTopo(n=8, alpha=0.001, beta=0.1, seed=1,
                          container_every=0)
        switch_links = [(n1, n2) for n1, n2, _o in topo.links
                        if n1.startswith("sw") and n2.startswith("sw")]
        assert len(switch_links) >= 7  # at least the chain

    def test_parameter_validation(self):
        with pytest.raises(ValueError, match="n >= 2"):
            WaxmanTopo(n=1)
        with pytest.raises(ValueError, match="alpha"):
            WaxmanTopo(n=4, alpha=0.0)
        with pytest.raises(ValueError, match="alpha"):
            WaxmanTopo(n=4, beta=-1.0)


class TestWanTopo:
    def test_full_abilene(self):
        topo = WanTopo(container_ports=2)
        pops = len(ABILENE_POPS)
        assert len(topo.switches()) == pops
        assert len(topo.hosts()) == pops
        assert len(topo.vnf_containers()) == pops
        trunks = [(n1, n2, opts) for n1, n2, opts in topo.links
                  if n1.startswith("s-") and n2.startswith("s-")]
        assert len(trunks) == len(ABILENE_TRUNKS)

    def test_trunk_delays_from_table(self):
        topo = WanTopo(containers=False)
        by_pair = {tuple(sorted((n1, n2))): opts
                   for n1, n2, opts in topo.links
                   if n1.startswith("s-") and n2.startswith("s-")}
        for pop1, pop2, delay in ABILENE_TRUNKS:
            opts = by_pair[tuple(sorted(("s-%s" % pop1, "s-%s" % pop2)))]
            assert opts["delay"] == delay

    def test_trimmed_prefix_stays_connected(self):
        for pops in range(2, len(ABILENE_POPS) + 1):
            topo = WanTopo(pops=pops, containers=False)
            # union-find over trunk links
            parent = {name: name for name in topo.switches()}

            def find(name):
                while parent[name] != name:
                    name = parent[name]
                return name

            for n1, n2, _opts in topo.links:
                if n1.startswith("s-") and n2.startswith("s-"):
                    parent[find(n1)] = find(n2)
            roots = {find(name) for name in topo.switches()}
            assert len(roots) == 1, "pops=%d disconnected" % pops

    def test_too_few_pops_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            WanTopo(pops=1)


class TestBuildTopology:
    def test_dispatch(self):
        topo = build_topology({"kind": "fat_tree", "k": 2})
        assert isinstance(topo, FatTreeTopo)
        assert isinstance(build_topology({"kind": "wan"}), WanTopo)
        assert isinstance(build_topology({"kind": "waxman", "n": 4,
                                          "seed": 1}), WaxmanTopo)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            build_topology({"kind": "torus"})
        with pytest.raises(ValueError, match="unknown topology kind"):
            build_topology({})

    def test_bad_kwarg_becomes_value_error(self):
        with pytest.raises(ValueError, match="fat_tree"):
            build_topology({"kind": "fat_tree", "pods": 4})

    def test_spec_not_mutated(self):
        spec = {"kind": "fat_tree", "k": 2}
        build_topology(spec)
        assert spec == {"kind": "fat_tree", "k": 2}

    def test_registry_names(self):
        assert set(TOPOLOGY_KINDS) == {"fat_tree", "waxman", "wan"}
