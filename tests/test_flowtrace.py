"""Tests for in-band flow telemetry: the sampled path tracer.

Two acceptance criteria for the subsystem live here: sampling is
deterministic (the same seed and scenario reproduce the byte-identical
sampled set AND the identical aggregated hop-latency breakdown), and
the chain-conformance checker flags an injected mis-steered flow.
Around them: the disabled-by-default contract, collector bounds,
digest invariance under VLAN tagging, hop-latency attribution through
a deployed chain, the FlightRecorder trace-id join, per-cause link
drop counters in ``health()``, and the JSONL export/CLI path.
"""

import json
import os
import struct

import pytest

from repro.cli import main as cli_main
from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology
from repro.openflow import Match
from repro.packet import Ethernet, IPv4, UDP, Vlan
from repro.scenario import CampaignRunner
from repro.telemetry.events import EventLog
from repro.telemetry.flowtrace import (FlowTrace, FlowTraceError,
                                       report_from_jsonl)

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "bandwidth": 100e6, "delay": 0.001},
        {"from": "s1", "to": "s2", "bandwidth": 100e6, "delay": 0.002},
        {"from": "h2", "to": "s2", "bandwidth": 100e6, "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
    ],
}

CHAIN_SG = {
    "name": "trace-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "v0", "type": "forwarder"}],
    "chain": ["h1", "v0", "h2"],
}

FLOWTRACE_SCENARIO = {
    "name": "flowtrace-smoke",
    "duration": 2.0,
    "seeds": [1],
    "topology": {"kind": "fat_tree", "k": 2, "containers_per_pod": 1,
                 "container_ports": 4},
    "chains": {"count": 1, "templates": ["bump"]},
    "workload": {"subscribers_per_sap": 50, "flows_per_subscriber": 0.05,
                 "flow_rate_pps": 100, "flow_duration": 0.2,
                 "max_flows": 8},
    "sla": {"max_delay": 0.1},
    "flowtrace": {"rate": 8},
}


def unique_frame(index, sport=40000, dport=5001):
    """A packed UDP frame whose trailing bytes are unique to ``index``
    (mirrors what the workload driver and probe sender guarantee)."""
    payload = b"flowtrace-pad" * 8 + struct.pack("!I", index)
    return Ethernet(src="00:00:00:00:00:01", dst="00:00:00:00:00:02",
                    type=Ethernet.IP_TYPE,
                    payload=IPv4(srcip="10.0.0.1", dstip="10.0.0.2",
                                 protocol=IPv4.UDP_PROTOCOL,
                                 payload=UDP(srcport=sport, dstport=dport,
                                             payload=payload))).pack()


@pytest.fixture
def escape():
    framework = ESCAPE.from_topology(load_topology(TOPOLOGY))
    framework.start()
    return framework


def drive_unique_udp(framework, packets=16, dport=5001):
    """Send ``packets`` UDP datagrams with per-packet-unique tails."""
    h1 = framework.net.get("h1")
    h2 = framework.net.get("h2")
    for index in range(packets):
        payload = (b"flowtrace-pad" * 8
                   + struct.pack("!Id", index, framework.sim.now))
        h1.send_udp(h2.ip, dport, payload)
        framework.run(0.002)
    framework.run(0.5)


class TestSampler:
    def test_disabled_by_default(self):
        tracer = FlowTrace()
        assert not tracer.enabled
        assert tracer.rate == FlowTrace.DEFAULT_RATE
        assert len(tracer) == 0

    def test_sampling_is_deterministic_per_seed(self):
        first = FlowTrace(seed=7).enable(rate=4)
        second = FlowTrace(seed=7).enable(rate=4)
        frames = [unique_frame(index) for index in range(256)]
        for time, frame in enumerate(frames):
            first.record("switch", "s1", float(time), frame, dpid=1)
            second.record("switch", "s1", float(time), frame, dpid=1)
        sampled = [trace["trace"] for trace in first.trace_records()]
        assert sampled  # 256 frames at 1/4 must catch some
        assert sampled == [trace["trace"]
                           for trace in second.trace_records()]

    def test_different_seed_samples_differently(self):
        frames = [unique_frame(index) for index in range(256)]
        seven = FlowTrace(seed=7).enable(rate=4)
        nine = FlowTrace(seed=9).enable(rate=4)
        for time, frame in enumerate(frames):
            seven.record("switch", "s1", float(time), frame, dpid=1)
            nine.record("switch", "s1", float(time), frame, dpid=1)
        assert ({t.id for t in seven._traces.values()}
                != {t.id for t in nine._traces.values()})

    def test_digest_invariant_under_vlan_tag(self):
        """Steering tags frames mid-path; the trace id must survive so
        postcards from tagged and untagged hops join up."""
        tracer = FlowTrace()
        payload = struct.pack("!I", 42) + b"flowtrace-pad" * 8
        plain = Ethernet(type=Ethernet.IP_TYPE,
                         payload=IPv4(protocol=IPv4.UDP_PROTOCOL,
                                      payload=UDP(srcport=1, dstport=2,
                                                  payload=payload)))
        tagged = Ethernet(type=Ethernet.VLAN_TYPE,
                          payload=Vlan(vid=55, type=Ethernet.IP_TYPE,
                                       payload=plain.payload))
        assert tracer.digest(plain.pack()) == tracer.digest(tagged.pack())

    def test_collector_is_bounded(self):
        tracer = FlowTrace(max_traces=4)
        tracer.enable(rate=1)
        for index in range(10):
            tracer.record("switch", "s1", float(index),
                          unique_frame(index), dpid=1)
        assert len(tracer) == 4
        assert tracer.evicted == 6

    def test_per_trace_hops_are_bounded(self):
        tracer = FlowTrace(max_hops=3)
        tracer.enable(rate=1)
        frame = unique_frame(0)
        for index in range(6):
            tracer.record("link.rx", "l%d" % index, float(index), frame)
        (trace,) = tracer._traces.values()
        assert len(trace.hops) == 3
        assert tracer.truncated == 3

    def test_chain_rate_must_be_multiple_of_base(self):
        tracer = FlowTrace(rate=64)
        with pytest.raises(FlowTraceError, match="multiple"):
            tracer.set_chain_rate("c1", 96)
        with pytest.raises(FlowTraceError, match="multiple"):
            tracer.set_chain_rate("c1", 32)
        tracer.set_chain_rate("c1", 128)  # fine

    def test_rate_below_one_rejected(self):
        with pytest.raises(FlowTraceError, match="rate"):
            FlowTrace(rate=0)

    def test_reset_keeps_config_and_paths(self):
        tracer = FlowTrace(seed=3)
        tracer.enable(rate=1)
        tracer.register_path("c1/seg/1", "c1", Match(), [1, 2])
        tracer.record("switch", "s1", 0.0, unique_frame(1), dpid=1)
        tracer.reset()
        assert len(tracer) == 0 and tracer.postcards == 0
        assert tracer.registered_paths() == ["c1/seg/1"]
        assert tracer.rate == 1 and tracer.seed == 3


class TestConformance:
    @staticmethod
    def tracer_with_path(dpids, alt_dpids=None):
        events = EventLog()
        tracer = FlowTrace(events=events)
        tracer.enable(rate=1)
        match = Match(dl_type=Ethernet.IP_TYPE,
                      nw_proto=IPv4.UDP_PROTOCOL, tp_dst=5001)
        tracer.register_path("c1/h1->h2/1", "c1", match, dpids,
                             alt_dpids=alt_dpids)
        return tracer, events

    def test_injected_mis_steer_is_flagged(self):
        """A packet that visits a switch off its installed path raises
        ``flowtrace.nonconformant`` — the acceptance criterion."""
        tracer, events = self.tracer_with_path([1, 2])
        frame = unique_frame(1)
        tracer.record("switch", "s1", 0.000, frame, dpid=1)
        tracer.record("switch", "s3", 0.001, frame, dpid=3)  # mis-steer
        report = tracer.aggregate()
        assert report["chains"]["c1"]["nonconformant"] == 1
        warnings = events.query(min_severity="WARN",
                                name="flowtrace.nonconformant")
        assert len(warnings) == 1
        assert warnings[0].tags["chain"] == "c1"
        # re-aggregation must not duplicate the event
        tracer.aggregate()
        assert len(events.query(name="flowtrace.nonconformant")) == 1

    def test_on_path_flow_is_conformant(self):
        tracer, events = self.tracer_with_path([1, 2])
        frame = unique_frame(2)
        tracer.record("switch", "s1", 0.000, frame, dpid=1)
        tracer.record("switch", "s2", 0.001, frame, dpid=2)
        report = tracer.aggregate()
        assert report["chains"]["c1"]["nonconformant"] == 0
        assert not events.query(name="flowtrace.nonconformant")

    def test_partial_traversal_is_conformant(self):
        """A trace caught mid-path (contiguous subsequence) is fine."""
        tracer, _events = self.tracer_with_path([1, 2, 3, 4])
        frame = unique_frame(3)
        tracer.record("switch", "s2", 0.000, frame, dpid=2)
        tracer.record("switch", "s3", 0.001, frame, dpid=3)
        assert tracer.aggregate()["chains"]["c1"]["nonconformant"] == 0

    def test_backup_path_is_not_a_false_positive(self):
        """A fast-failover flip detours through registered backup
        switches — conformant, not mis-steering."""
        tracer, events = self.tracer_with_path([1, 2], alt_dpids=[3])
        frame = unique_frame(4)
        tracer.record("switch", "s1", 0.000, frame, dpid=1)
        tracer.record("switch", "s3", 0.001, frame, dpid=3)  # backup
        assert tracer.aggregate()["chains"]["c1"]["nonconformant"] == 0
        assert not events.query(name="flowtrace.nonconformant")

    def test_unregistered_traffic_is_unclassified(self):
        tracer = FlowTrace()
        tracer.enable(rate=1)
        tracer.record("switch", "s1", 0.0, unique_frame(5), dpid=1)
        report = tracer.aggregate()
        assert report["unclassified"] == 1
        assert report["chains"] == {}


class TestEscapeIntegration:
    def test_disabled_costs_nothing_and_collects_nothing(self, escape):
        escape.deploy_service(load_service_graph(CHAIN_SG))
        drive_unique_udp(escape, packets=8)
        assert escape.flowtrace.status()["postcards"] == 0
        assert len(escape.flowtrace) == 0

    def test_steering_registers_and_unregisters_paths(self, escape):
        chain = escape.deploy_service(load_service_graph(CHAIN_SG))
        registered = escape.flowtrace.registered_paths()
        assert registered
        assert all(path.startswith("trace-chain/") for path in registered)
        escape.terminate_service(chain.sg.name)
        assert escape.flowtrace.registered_paths() == []

    def test_attribution_covers_one_way_delay(self, escape):
        """At 1/1 sampling through a deployed chain, every hop delta is
        named and the deltas sum to the whole one-way delay."""
        escape.deploy_service(load_service_graph(CHAIN_SG))
        escape.flowtrace.enable(rate=1)
        drive_unique_udp(escape, packets=16)
        report = escape.flowtrace.aggregate()
        assert report["traces"] >= 16  # request + return directions
        summary = report["chains"]["trace-chain"]
        assert summary["traces"] >= 16
        assert summary["nonconformant"] == 0
        assert summary["attributed_ratio"] == pytest.approx(1.0)
        assert summary["one_way"]["p50"] > 0
        labels = {hop["hop"] for hop in summary["hops"]}
        assert any(label.startswith("link:") for label in labels)
        assert any(label.startswith("switch:") for label in labels)
        assert any(label.startswith("vnf:") for label in labels)
        shares = sum(hop["share"] for hop in summary["hops"])
        assert shares == pytest.approx(1.0)

    def test_recorder_joins_on_flow_trace_id(self, escape):
        """`escape record` output and telemetry postcards correlate on
        the same per-packet digest."""
        escape.deploy_service(load_service_graph(CHAIN_SG))
        for link in escape.net.links:
            escape.recorder.attach(link)
        escape.flowtrace.enable(rate=1)
        drive_unique_udp(escape, packets=4)
        trace_ids = [trace["trace"]
                     for trace in escape.flowtrace.trace_records()]
        assert trace_ids
        joined = escape.recorder.records(flow_trace=trace_ids[0])
        assert joined
        for record in joined:
            assert escape.recorder.flow_trace_id(record) == trace_ids[0]
        # and a different trace id selects a disjoint capture set
        other = escape.recorder.records(flow_trace=trace_ids[-1])
        assert {id(r) for r in joined}.isdisjoint(
            {id(r) for r in other}) or trace_ids[0] == trace_ids[-1]

    def test_health_reports_per_cause_drops_and_flowtrace(self, escape):
        health = escape.health()
        links = health["links"]
        for key in ("delivered", "dropped", "dropped_down",
                    "dropped_loss", "dropped_queue"):
            assert key in links
        status = health["flowtrace"]
        assert status["enabled"] is False
        assert status["postcards"] == 0

    def test_jsonl_round_trip(self, escape, tmp_path):
        escape.deploy_service(load_service_graph(CHAIN_SG))
        escape.flowtrace.enable(rate=1)
        drive_unique_udp(escape, packets=8)
        live = escape.flowtrace.aggregate()
        path = str(tmp_path / "flowtrace.jsonl")
        written = escape.flowtrace.write_jsonl(path)
        assert written == live["traces"]
        offline = report_from_jsonl(path)
        assert offline["traces"] == live["traces"]
        live_chain = live["chains"]["trace-chain"]
        offline_chain = offline["chains"]["trace-chain"]
        assert offline_chain["one_way"] == live_chain["one_way"]
        assert offline_chain["nonconformant"] == \
            live_chain["nonconformant"]

    def test_publish_exports_chain_gauges(self, escape):
        escape.deploy_service(load_service_graph(CHAIN_SG))
        escape.flowtrace.enable(rate=1)
        drive_unique_udp(escape, packets=4)
        escape.flowtrace.publish(escape.telemetry.metrics)
        snapshot = escape.metrics_snapshot()
        assert any(key.startswith("flowtrace.chain.one_way_p50")
                   for key in snapshot)
        assert any(key.startswith("flowtrace.chain.nonconformant")
                   for key in snapshot)


class TestScenarioDeterminism:
    """Satellite: same seed + same scenario => byte-identical sampled
    set and identical aggregated breakdown."""

    @pytest.fixture(scope="class")
    def twin_runs(self, tmp_path_factory):
        runs = []
        for label in ("a", "b"):
            results = tmp_path_factory.mktemp("flowtrace-%s" % label)
            runner = CampaignRunner(dict(FLOWTRACE_SCENARIO),
                                    results_dir=str(results))
            runner.run()
            runs.append(runner)
        return runs

    @staticmethod
    def jsonl_lines(runner):
        path = runner.bundles[0]["flowtrace"]["jsonl"]["path"]
        with open(path) as handle:
            return [line.rstrip("\n") for line in handle if line.strip()]

    def test_bundle_carries_flowtrace_report(self, twin_runs):
        bundle = twin_runs[0].bundles[0]
        assert bundle["schema"] == 4
        report = bundle["flowtrace"]
        assert report["rate"] == 8
        assert report["seed"] == 1  # defaults to the run seed
        assert report["traces"] > 0
        assert report["chains"]
        for summary in report["chains"].values():
            assert summary["nonconformant"] == 0
            assert summary["attributed_ratio"] >= 0.9

    def test_sampled_set_is_byte_identical(self, twin_runs):
        first, second = (self.jsonl_lines(runner) for runner in twin_runs)
        assert first == second
        trace_ids = [json.loads(line)["trace"] for line in first[1:]]
        assert trace_ids

    def test_aggregated_breakdown_is_identical(self, twin_runs):
        # the jsonl path embeds the per-run results dir; everything
        # else must match to the byte
        reports = []
        for runner in twin_runs:
            report = dict(runner.bundles[0]["flowtrace"])
            report.pop("jsonl", None)
            reports.append(json.dumps(report, sort_keys=True))
        assert reports[0] == reports[1]

    def test_cli_renders_breakdown(self, twin_runs, capsys):
        results_dir = os.path.dirname(
            twin_runs[0].bundles[0]["flowtrace"]["jsonl"]["path"])
        assert cli_main(["flowtrace", results_dir]) == 0
        out = capsys.readouterr().out
        assert "flowtrace: 1/8 sampling" in out
        assert "HOP" in out and "SHARE" in out

    def test_cli_json_output(self, twin_runs, capsys):
        jsonl = twin_runs[0].bundles[0]["flowtrace"]["jsonl"]["path"]
        assert cli_main(["flowtrace", jsonl, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["traces"] > 0
        assert report["chains"]

    def test_cli_rejects_missing_source(self, capsys):
        assert cli_main(["flowtrace", "/nonexistent/nowhere"]) == 2
        assert "no such file" in capsys.readouterr().err
