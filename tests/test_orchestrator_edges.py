"""Edge-case coverage for the orchestrator's plumbing."""

import pytest

from repro.core import ESCAPE, OrchestratorError
from repro.core.orchestrator import _PortMap, build_resource_view
from repro.core.sgfile import load_service_graph, load_topology
from repro.netem import Network
from repro.openflow import Match

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "h3", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "h2", "to": "s1", "delay": 0.001},
        {"from": "h3", "to": "s1", "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
    ],
}


@pytest.fixture
def escape():
    framework = ESCAPE.from_topology(load_topology(TOPOLOGY))
    framework.start()
    return framework


class TestPortMap:
    def test_port_lookup(self, escape):
        ports = _PortMap(escape.net)
        port = ports.port("s1", "h1")
        switch = escape.net.get("s1")
        assert switch.datapath.ports[port].name.startswith("s1-eth")

    def test_unknown_peer_rejected(self, escape):
        ports = _PortMap(escape.net)
        with pytest.raises(OrchestratorError):
            ports.port("s1", "ghost")

    def test_specific_interface_hint(self, escape):
        ports = _PortMap(escape.net)
        container = escape.net.get("nc1")
        intf_names = list(container.interfaces)
        port_a = ports.port("s1", "nc1", intf_names[0])
        port_b = ports.port("s1", "nc1", intf_names[1])
        assert port_a != port_b

    def test_bad_interface_hint_rejected(self, escape):
        ports = _PortMap(escape.net)
        with pytest.raises(OrchestratorError):
            ports.port("s1", "nc1", "nc1-eth99")

    def test_peer_switch_of(self, escape):
        ports = _PortMap(escape.net)
        container = escape.net.get("nc1")
        intf_name = next(iter(container.interfaces))
        assert ports.peer_switch_of("nc1", intf_name) == "s1"
        assert ports.peer_switch_of("nc1", "nope") is None


class TestResourceViewBuilder:
    def test_view_mirrors_topology(self, escape):
        view = build_resource_view(escape.net)
        assert set(view.saps()) == {"h1", "h2", "h3"}
        assert view.switches() == ["s1"]
        assert view.containers() == ["nc1"]
        # parallel nc1--s1 links collapse into one view edge (the graph
        # is simple); port accounting still sees all four interfaces
        assert view.graph.number_of_edges() == 4

    def test_container_capacity_copied(self, escape):
        view = build_resource_view(escape.net)
        data = view.graph.nodes["nc1"]
        assert data["cpu"] == 4
        assert data["ports"] == 4


class TestFlowspecInference:
    def test_ambiguous_endpoints_need_explicit_match(self, escape):
        sg = load_service_graph({
            "name": "fanout",
            "saps": ["h1", "h2", "h3"],
            "vnfs": [{"name": "lb", "type": "load_balancer"}],
            "links": [
                {"from": "h1", "to": "lb"},
                {"from": "lb", "to": "h2"},
                {"from": "lb", "to": "h3"},
            ],
        })
        with pytest.raises(OrchestratorError) as exc:
            escape.deploy_service(sg)
        assert "flowspec" in str(exc.value)

    def test_explicit_match_unblocks_fanout(self, escape):
        sg = load_service_graph({
            "name": "fanout-ok",
            "saps": ["h1", "h2", "h3"],
            "vnfs": [{"name": "lb", "type": "load_balancer"}],
            "links": [
                {"from": "h1", "to": "lb"},
                {"from": "lb", "to": "h2"},
                {"from": "lb", "to": "h3"},
            ],
        })
        h1 = escape.net.get("h1")
        chain = escape.deploy_service(
            sg, match=Match(dl_type=0x0800, nw_src=h1.ip),
            return_path="none")
        assert chain.active

    def test_missing_netconf_session_reported(self, escape):
        escape.orchestrator._clients.pop("nc1")
        sg = load_service_graph({
            "name": "nosession",
            "saps": ["h1", "h2"],
            "vnfs": [{"name": "v", "type": "forwarder"}],
            "chain": ["h1", "v", "h2"],
        })
        with pytest.raises(OrchestratorError) as exc:
            escape.deploy_service(sg)
        assert "NETCONF" in str(exc.value)

    def test_bad_return_path_rejected(self, escape):
        sg = load_service_graph({
            "name": "badrp",
            "saps": ["h1", "h2"],
            "vnfs": [{"name": "v", "type": "forwarder"}],
            "chain": ["h1", "v", "h2"],
        })
        with pytest.raises(OrchestratorError):
            escape.deploy_service(sg, return_path="teleport")
