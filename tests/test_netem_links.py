"""Tests for interfaces, shaped links and resource budgets."""

import pytest

from repro.netem import Interface, Link, ResourceBudget, ResourceError
from repro.packet import EthAddr
from repro.sim import Simulator


def make_pair(sim, **link_opts):
    intf1 = Interface("a-eth0", None, EthAddr(1))
    intf2 = Interface("b-eth0", None, EthAddr(2))
    link = Link(sim, intf1, intf2, **link_opts)
    return intf1, intf2, link


class TestLink:
    def test_instant_delivery_without_shaping(self):
        sim = Simulator()
        intf1, intf2, _link = make_pair(sim)
        got = []
        intf2.set_receiver(lambda intf, data: got.append((sim.now, data)))
        intf1.send(b"hello")
        sim.run()
        assert got == [(0.0, b"hello")]

    def test_propagation_delay(self):
        sim = Simulator()
        intf1, intf2, _link = make_pair(sim, delay=0.25)
        got = []
        intf2.set_receiver(lambda intf, data: got.append(sim.now))
        intf1.send(b"x")
        sim.run()
        assert got == [pytest.approx(0.25)]

    def test_serialization_delay(self):
        sim = Simulator()
        # 1000-byte frame at 8000 bit/s -> 1 s serialization
        intf1, intf2, _link = make_pair(sim, bandwidth=8000.0)
        got = []
        intf2.set_receiver(lambda intf, data: got.append(sim.now))
        intf1.send(b"\x00" * 1000)
        sim.run()
        assert got == [pytest.approx(1.0)]

    def test_back_to_back_frames_queue(self):
        sim = Simulator()
        intf1, intf2, _link = make_pair(sim, bandwidth=8000.0)
        got = []
        intf2.set_receiver(lambda intf, data: got.append(sim.now))
        intf1.send(b"\x00" * 1000)
        intf1.send(b"\x00" * 1000)
        sim.run()
        assert got == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_directions_are_independent(self):
        sim = Simulator()
        intf1, intf2, _link = make_pair(sim, bandwidth=8000.0)
        got1, got2 = [], []
        intf1.set_receiver(lambda intf, data: got1.append(sim.now))
        intf2.set_receiver(lambda intf, data: got2.append(sim.now))
        intf1.send(b"\x00" * 1000)
        intf2.send(b"\x00" * 1000)
        sim.run()
        assert got1 == [pytest.approx(1.0)]
        assert got2 == [pytest.approx(1.0)]

    def test_queue_limit_drops(self):
        sim = Simulator()
        intf1, intf2, link = make_pair(sim, bandwidth=8000.0, max_queue=2)
        got = []
        intf2.set_receiver(lambda intf, data: got.append(data))
        for _ in range(5):
            intf1.send(b"\x00" * 1000)
        sim.run()
        assert len(got) == 2
        assert link.dropped == 3

    def test_total_loss(self):
        sim = Simulator()
        intf1, intf2, link = make_pair(sim, loss=1.0)
        got = []
        intf2.set_receiver(lambda intf, data: got.append(data))
        for _ in range(10):
            intf1.send(b"x")
        sim.run()
        assert got == []
        assert link.dropped == 10

    def test_partial_loss_is_deterministic(self):
        def run_once():
            sim = Simulator()
            intf1, intf2, link = make_pair(sim, loss=0.3)
            got = []
            intf2.set_receiver(lambda intf, data: got.append(data))
            for _ in range(100):
                intf1.send(b"x")
            sim.run()
            return len(got)
        first, second = run_once(), run_once()
        assert first == second
        assert 50 < first < 95

    def test_down_link_drops(self):
        sim = Simulator()
        intf1, intf2, link = make_pair(sim)
        got = []
        intf2.set_receiver(lambda intf, data: got.append(data))
        link.set_up(False)
        intf1.send(b"x")
        sim.run()
        assert got == []

    def test_counters(self):
        sim = Simulator()
        intf1, intf2, link = make_pair(sim)
        intf2.set_receiver(lambda intf, data: None)
        intf1.send(b"abcd")
        sim.run()
        assert intf1.tx_packets == 1
        assert intf1.tx_bytes == 4
        assert intf2.rx_packets == 1
        assert link.delivered == 1

    def test_other_end(self):
        sim = Simulator()
        intf1, intf2, link = make_pair(sim)
        assert link.other_end(intf1) is intf2
        assert link.other_end(intf2) is intf1
        stranger = Interface("c-eth0", None, EthAddr(3))
        with pytest.raises(ValueError):
            link.other_end(stranger)

    @pytest.mark.parametrize("kwargs", [
        {"loss": -0.1}, {"loss": 1.1}, {"bandwidth": 0},
        {"bandwidth": -5}, {"delay": -1.0},
    ])
    def test_bad_parameters_rejected(self, kwargs):
        sim = Simulator()
        intf1 = Interface("a", None, EthAddr(1))
        intf2 = Interface("b", None, EthAddr(2))
        with pytest.raises(ValueError):
            Link(sim, intf1, intf2, **kwargs)


class TestResourceBudget:
    def test_reserve_and_release(self):
        budget = ResourceBudget(cpu=2.0, mem=1024.0)
        budget.reserve("vnf1", 1.0, 512.0)
        assert budget.cpu_free == pytest.approx(1.0)
        assert budget.mem_free == pytest.approx(512.0)
        budget.release("vnf1")
        assert budget.cpu_free == pytest.approx(2.0)

    def test_overflow_rejected(self):
        budget = ResourceBudget(cpu=1.0, mem=100.0)
        with pytest.raises(ResourceError):
            budget.reserve("big", 2.0, 10.0)
        with pytest.raises(ResourceError):
            budget.reserve("fat", 0.5, 200.0)

    def test_exact_fit_allowed(self):
        budget = ResourceBudget(cpu=1.0, mem=100.0)
        budget.reserve("fits", 1.0, 100.0)
        assert budget.cpu_free == pytest.approx(0.0)

    def test_double_reservation_rejected(self):
        budget = ResourceBudget()
        budget.reserve("x", 0.1, 1.0)
        with pytest.raises(ResourceError):
            budget.reserve("x", 0.1, 1.0)

    def test_release_unknown_is_noop(self):
        ResourceBudget().release("ghost")

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            ResourceBudget().reserve("x", -1.0, 0.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResourceBudget(cpu=0.0)

    def test_snapshot(self):
        budget = ResourceBudget(cpu=4.0, mem=2048.0)
        budget.reserve("a", 1.0, 256.0)
        budget.reserve("b", 0.5, 128.0)
        snap = budget.snapshot()
        assert snap["cpu_used"] == pytest.approx(1.5)
        assert snap["mem_used"] == pytest.approx(384.0)
