"""Tests for the SLA conformance monitor (repro.core.sla)."""

import pytest

from repro.core import ESCAPE, SLAError, SLAMonitor
from repro.core.sgfile import load_topology
from repro.packet.probe import pack_probe, parse_probe

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.001},
        {"from": "s2", "to": "h2", "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
    ],
}

SG = {
    "name": "sla-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow all"}}],
    "chain": ["h1", "fw", "h2"],
    "requirements": [{"from": "h1", "to": "h2", "max_delay": 0.05}],
}

SG_NO_REQ = {
    "name": "plain-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow all"}}],
    "chain": ["h1", "fw", "h2"],
}


@pytest.fixture
def escape():
    framework = ESCAPE.from_topology(load_topology(TOPOLOGY))
    framework.start()
    return framework


def degrade_core_link(escape, delay=0.2):
    links = escape.net.links_between("s1", "s2")
    assert links
    for link in links:
        link.delay = delay


class TestProbeCodec:
    def test_round_trip(self):
        payload = pack_probe(7, 3, 1, 1.25, "chain-x", pad_to=256)
        assert len(payload) == 256
        probe = parse_probe(payload)
        assert (probe.trace_id, probe.seq, probe.index) == (7, 3, 1)
        assert probe.send_time == pytest.approx(1.25)
        assert probe.chain == "chain-x"

    def test_non_probe_payload(self):
        assert parse_probe(b"not a probe at all") is None
        assert parse_probe(b"") is None


class TestLifecycle:
    def test_autostart_on_requirements(self, escape):
        escape.deploy_service(SG)
        assert "sla-chain" in escape.sla_monitors
        assert escape.sla_monitors["sla-chain"].running

    def test_no_requirements_no_monitor(self, escape):
        chain = escape.deploy_service(SG_NO_REQ)
        assert "plain-chain" not in escape.sla_monitors
        with pytest.raises(SLAError):
            SLAMonitor(chain)

    def test_terminate_stops_monitor(self, escape):
        escape.deploy_service(SG)
        monitor = escape.sla_monitors["sla-chain"]
        escape.terminate_service("sla-chain")
        assert not monitor.running
        assert "sla-chain" not in escape.sla_monitors

    def test_monitor_stands_down_with_chain(self, escape):
        chain = escape.deploy_service(SG)
        monitor = escape.sla_monitors["sla-chain"]
        escape.run(1.0)
        chain.undeploy()
        escape.run(1.0)
        assert not monitor.running


class TestStateMachine:
    def test_healthy_chain_stays_ok(self, escape):
        escape.deploy_service(SG)
        escape.run(2.0)
        monitor = escape.sla_monitors["sla-chain"]
        assert monitor.state == "OK"
        assert monitor.rounds >= 3
        report = monitor.last_report("h1", "h2")
        assert report is not None
        assert not report.breached
        assert report.delay < 0.05

    def test_degraded_link_escalates_warn_then_violated(self, escape):
        escape.deploy_service(SG)
        escape.run(1.0)
        monitor = escape.sla_monitors["sla-chain"]
        alerts = []
        monitor.on_alert(lambda chain, old, new, detail:
                         alerts.append((chain, old, new)))
        degrade_core_link(escape)
        escape.run(4.0)
        assert monitor.state == "VIOLATED"
        states = [(old, new) for _t, old, new in monitor.transitions]
        assert ("OK", "WARN") in states
        assert ("WARN", "VIOLATED") in states
        assert ("sla-chain", "OK", "WARN") in alerts
        assert ("sla-chain", "WARN", "VIOLATED") in alerts
        report = monitor.last_report("h1", "h2")
        assert report.breached
        assert any("delay" in reason for reason in report.reasons)

    def test_recovery_returns_to_ok(self, escape):
        escape.deploy_service(SG)
        monitor = escape.sla_monitors["sla-chain"]
        degrade_core_link(escape)
        escape.run(4.0)
        assert monitor.state == "VIOLATED"
        degrade_core_link(escape, delay=0.001)
        escape.run(4.0)
        assert monitor.state == "OK"
        assert ("VIOLATED", "OK") in [(old, new) for _t, old, new
                                      in monitor.transitions]

    def test_transitions_emit_correlated_events(self, escape):
        escape.deploy_service(SG)
        degrade_core_link(escape)
        escape.run(4.0)
        events = escape.telemetry.events
        warns = events.query(name="sla.warn")
        violations = events.query(name="sla.violated")
        assert warns and violations
        assert violations[0].severity == "ERROR"
        assert violations[0].tags["chain"] == "sla-chain"
        # the deploy itself was also logged
        assert events.query(name="orchestrator.deployed")


class TestMeasurements:
    def test_probe_traffic_does_not_pollute_user_counters(self, escape):
        escape.deploy_service(SG)
        escape.run(2.0)
        h2 = escape.net.get("h2")
        assert h2.udp_rx_count == 0
        assert h2.probe_rx_count > 0

    def test_gauges_in_prometheus_export(self, escape):
        escape.deploy_service(SG)
        escape.run(2.0)
        prom = escape.export_metrics("prom")
        assert 'sla_state{chain="sla-chain"} 0' in prom
        assert 'sla_probe_delay{chain="sla-chain"}' in prom
        degrade_core_link(escape)
        escape.run(4.0)
        prom = escape.export_metrics("prom")
        assert 'sla_state{chain="sla-chain"} 2' in prom

    def test_status_and_render(self, escape):
        escape.deploy_service(SG)
        escape.run(2.0)
        monitor = escape.sla_monitors["sla-chain"]
        status = monitor.status()
        assert status["state"] == "OK"
        assert status["requirements"][0]["path"] == "h1->h2"
        assert "sla-chain: OK" in monitor.render()

    def test_bandwidth_requirement_measured(self):
        topology = {
            "nodes": TOPOLOGY["nodes"],
            "links": [
                {"from": "h1", "to": "s1", "delay": 0.001},
                # 2 Mbit/s bottleneck so probe bursts disperse
                {"from": "s1", "to": "s2", "delay": 0.001,
                 "bandwidth": 2e6},
                {"from": "s2", "to": "h2", "delay": 0.001},
                {"from": "nc1", "to": "s1", "delay": 0.0005},
                {"from": "nc1", "to": "s1", "delay": 0.0005},
            ],
        }
        sg = dict(SG, requirements=[
            {"from": "h1", "to": "h2", "min_bandwidth": 10e6}])
        framework = ESCAPE.from_topology(load_topology(topology))
        framework.start()
        framework.deploy_service(sg)
        framework.run(3.0)
        monitor = framework.sla_monitors["sla-chain"]
        report = monitor.last_report("h1", "h2")
        assert report.bandwidth is not None
        # dispersion should measure roughly the bottleneck rate
        assert report.bandwidth < 5e6
        assert monitor.state in ("WARN", "VIOLATED")
        assert any("bandwidth" in reason for reason in report.reasons)


class TestCLI:
    def test_health_sla_events_commands(self, escape):
        cli = escape.cli()
        assert "no SLA monitors" in cli.run_command("sla")
        escape.deploy_service(SG)
        escape.run(1.0)
        assert "sla=OK" in cli.run_command("health")
        assert "sla-chain: OK" in cli.run_command("sla sla-chain")
        degrade_core_link(escape)
        escape.run(4.0)
        assert "sla=VIOLATED" in cli.run_command("health")
        output = cli.run_command("events warn")
        assert "sla.violated" in output

    def test_events_jsonl_export(self, escape, tmp_path):
        cli = escape.cli()
        escape.deploy_service(SG)
        escape.run(1.0)
        path = tmp_path / "events.jsonl"
        output = cli.run_command("events jsonl %s" % path)
        assert "wrote" in output
        assert "orchestrator.deployed" in path.read_text()
