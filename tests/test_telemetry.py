"""Unit tests for the repro.telemetry subsystem: registry semantics,
histogram percentiles, span nesting under the simulated clock, and the
JSON / Prometheus exporters."""

import json

import pytest

from repro.sim import Simulator
from repro.telemetry import (Counter, Gauge, Histogram, MetricError,
                             MetricsRegistry, Telemetry, Tracer, current,
                             set_current, snapshot_dict, to_json,
                             to_prometheus, write_snapshot)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("layer.component.events")
        assert counter.value == 0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_cannot_decrease(self):
        counter = Counter("layer.component.events")
        with pytest.raises(MetricError):
            counter.inc(-1)

    def test_snapshot_shape(self):
        counter = Counter("layer.component.events")
        counter.inc()
        snap = counter.snapshot()
        assert snap["type"] == "counter"
        assert snap["value"] == 1


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("layer.component.level")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_callback_gauge(self):
        state = {"n": 7}
        gauge = Gauge("layer.component.level")
        gauge.set_function(lambda: state["n"])
        assert gauge.value == 7
        state["n"] = 9
        assert gauge.value == 9

    def test_set_overrides_callback(self):
        gauge = Gauge("layer.component.level")
        gauge.set_function(lambda: 1)
        gauge.set(5)
        assert gauge.value == 5


class TestHistogram:
    def test_lifetime_count_and_sum(self):
        hist = Histogram("layer.component.latency")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(6.0)

    def test_nearest_rank_percentiles(self):
        hist = Histogram("layer.component.latency")
        for value in range(1, 101):  # 1..100
            hist.observe(float(value))
        assert hist.percentile(50) == 50.0
        assert hist.percentile(90) == 90.0
        assert hist.percentile(99) == 99.0
        assert hist.percentile(100) == 100.0
        assert hist.percentile(0) == 1.0

    def test_empty_percentile_is_none(self):
        hist = Histogram("layer.component.latency")
        assert hist.percentile(50) is None

    def test_percentile_range_checked(self):
        hist = Histogram("layer.component.latency")
        hist.observe(1.0)
        with pytest.raises(MetricError):
            hist.percentile(101)

    def test_window_is_bounded_but_lifetime_is_not(self):
        hist = Histogram("layer.component.latency", size=4)
        for value in range(10):
            hist.observe(float(value))
        assert hist.count == 10
        assert len(hist.window_values) == 4
        # only the last 4 observations (6..9) remain in the window
        assert hist.percentile(0) == 6.0

    def test_snapshot_statistics(self):
        hist = Histogram("layer.component.latency")
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["min"] == 2.0
        assert snap["max"] == 6.0
        assert snap["mean"] == pytest.approx(4.0)
        assert snap["p50"] == 4.0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(MetricError):
            Histogram("layer.component.latency", size=0)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("core.orchestrator.deploys")
        second = registry.counter("core.orchestrator.deploys")
        assert first is second
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("core.orchestrator.deploys")
        with pytest.raises(MetricError):
            registry.gauge("core.orchestrator.deploys")

    def test_name_scheme_enforced(self):
        registry = MetricsRegistry()
        for bad in ("nodots", "Upper.case", ".leading", "trailing.",
                    "sp ace.x"):
            with pytest.raises(MetricError):
                registry.counter(bad)
        # two or more dotted lowercase segments are fine
        registry.counter("netconf.client.rpcs")
        registry.counter("a.b")

    def test_clock_stamps_last_updated(self):
        ticks = {"now": 1.5}
        registry = MetricsRegistry(clock=lambda: ticks["now"])
        counter = registry.counter("layer.component.events")
        counter.inc()
        assert counter.last_updated == 1.5
        ticks["now"] = 2.5
        counter.inc()
        assert counter.last_updated == 2.5

    def test_collectors_run_before_snapshot(self):
        registry = MetricsRegistry()
        live = {"packets": 0}
        registry.add_collector(
            lambda reg: reg.gauge("netem.link.delivered").set(
                live["packets"]))
        live["packets"] = 42
        snap = registry.snapshot()
        assert snap["netem.link.delivered"]["value"] == 42

    def test_names_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("b.two")
        registry.counter("a.one")
        assert registry.names() == ["a.one", "b.two"]
        assert "a.one" in registry
        assert "c.three" not in registry


class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("service.deploy") as root:
            with tracer.span("orchestrator.deploy"):
                with tracer.span("netconf.rpc", op="startVNF"):
                    pass
                with tracer.span("netconf.rpc", op="connectVNF"):
                    pass
        assert root.depth() == 3
        assert len(root.children) == 1
        rpcs = root.find("netconf.rpc")
        assert [span.tags["op"] for span in rpcs] == ["startVNF",
                                                      "connectVNF"]

    def test_sim_clock_orders_spans(self):
        """Span timestamps come from the simulator, so a span enclosing
        a sim pump measures simulated (not wall-clock) time."""
        sim = Simulator()
        tracer = Tracer(clock=lambda: sim.now)
        sim.schedule(0.5, lambda: None)

        with tracer.span("outer") as outer:
            sim.run(until=0.25)
            with tracer.span("inner") as inner:
                sim.run(until=1.0)
        assert outer.start == 0.0
        assert inner.start == 0.25
        assert inner.end == 1.0
        assert outer.duration == pytest.approx(1.0)
        assert inner.start >= outer.start
        assert inner.end <= outer.end

    def test_error_status_propagates_and_does_not_swallow(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        trace = tracer.last_trace
        assert trace.status == "error"

    def test_only_root_spans_land_in_traces(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert len(tracer.traces) == 1
        assert tracer.traces[0].name == "root"

    def test_traces_ring_is_bounded(self):
        tracer = Tracer(max_traces=3)
        for index in range(10):
            with tracer.span("t%d" % index):
                pass
        assert len(tracer.traces) == 3
        assert tracer.last_trace.name == "t9"

    def test_sampled_span_honours_rate(self):
        tracer = Tracer()
        for seq in range(512):
            with tracer.sampled_span("pkt", seq, 256):
                pass
        # only seq 0 and 256 produced real spans
        assert len(tracer.traces) == 2
        with tracer.sampled_span("pkt", 0, 0):
            pass  # rate 0 disables sampling entirely
        assert len(tracer.traces) == 2

    def test_render_shows_tree_and_tags(self):
        tracer = Tracer()
        with tracer.span("parent", service="demo"):
            with tracer.span("child"):
                pass
        text = tracer.render_last()
        lines = text.splitlines()
        assert lines[0].startswith("parent")
        assert "service=demo" in lines[0]
        assert lines[1].startswith("  child")


class TestExporters:
    def _populated(self):
        telemetry = Telemetry()
        telemetry.metrics.counter("netconf.client.rpcs", "rpc count").inc(4)
        telemetry.metrics.gauge("netem.link.drops").set(2)
        hist = telemetry.metrics.histogram("core.orchestrator.deploy_time")
        for value in (0.1, 0.2, 0.3):
            hist.observe(value)
        with telemetry.tracer.span("service.deploy"):
            with telemetry.tracer.span("orchestrator.deploy"):
                pass
        return telemetry

    def test_json_round_trips(self):
        telemetry = self._populated()
        data = json.loads(to_json(telemetry.metrics, telemetry.tracer))
        assert data["metrics"]["netconf.client.rpcs"]["value"] == 4
        assert data["metrics"]["netem.link.drops"]["value"] == 2
        assert data["traces"][0]["name"] == "service.deploy"
        assert data["traces"][0]["children"][0]["name"] == \
            "orchestrator.deploy"

    def test_snapshot_dict_without_tracer(self):
        telemetry = self._populated()
        data = snapshot_dict(telemetry.metrics)
        assert "traces" not in data
        assert "netconf.client.rpcs" in data["metrics"]

    def test_prometheus_text_format(self):
        telemetry = self._populated()
        text = to_prometheus(telemetry.metrics)
        assert "# TYPE netconf_client_rpcs counter" in text
        assert "netconf_client_rpcs 4" in text
        assert "# TYPE netem_link_drops gauge" in text
        assert "# TYPE core_orchestrator_deploy_time histogram" in text
        # the +Inf bucket is mandatory even without explicit bounds
        assert 'core_orchestrator_deploy_time_bucket{le="+Inf"} 3' in text
        assert "core_orchestrator_deploy_time_count 3" in text
        assert "core_orchestrator_deploy_time_sum" in text
        # dotted names are sanitized: no dots outside label values
        for line in text.splitlines():
            if not line.startswith("#"):
                assert "." not in line.split("{")[0].split(" ")[0]

    def test_prometheus_explicit_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("netconf.client.rpc_latency",
                                  buckets=[0.01, 0.1, 1.0])
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        text = to_prometheus(registry)
        assert 'netconf_client_rpc_latency_bucket{le="0.01"} 1' in text
        assert 'netconf_client_rpc_latency_bucket{le="0.1"} 2' in text
        assert 'netconf_client_rpc_latency_bucket{le="1"} 3' in text
        assert 'netconf_client_rpc_latency_bucket{le="+Inf"} 4' in text
        assert "netconf_client_rpc_latency_count 4" in text

    def test_prometheus_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("layer.component.events",
                         labels={"path": 'C:\\x "quoted"\nnext'}).inc()
        text = to_prometheus(registry)
        assert ('layer_component_events'
                '{path="C:\\\\x \\"quoted\\"\\nnext"} 1') in text
        # the raw (unescaped) value must not leak into the exposition
        assert '"C:\\x' not in text

    def test_json_parse_matches_snapshot_dict(self):
        """Exporter round-trip: to_json → parse == snapshot_dict.

        Uses a bare registry/tracer (no Telemetry bundle) so every
        collector output is deterministic across repeated snapshots —
        the bundle's self-overhead gauges accumulate wall-clock time
        and would legitimately differ between the two exports.
        """
        registry = MetricsRegistry()
        registry.counter("netconf.client.rpcs").inc(4)
        registry.gauge("netem.link.drops").set(2)
        hist = registry.histogram("core.orchestrator.deploy_time",
                                  buckets=[0.15, 0.25])
        for value in (0.1, 0.2, 0.3):
            hist.observe(value)
        tracer = Tracer()
        with tracer.span("service.deploy"):
            with tracer.span("orchestrator.deploy"):
                pass
        parsed = json.loads(to_json(registry, tracer))
        direct = snapshot_dict(registry, tracer)
        assert parsed == direct
        buckets = parsed["metrics"]["core.orchestrator.deploy_time"][
            "buckets"]
        assert buckets == [[0.15, 1], [0.25, 2]]

    def test_write_snapshot_files(self, tmp_path):
        telemetry = self._populated()
        json_path = tmp_path / "snap.json"
        prom_path = tmp_path / "snap.prom"
        write_snapshot(str(json_path), telemetry.metrics,
                       telemetry.tracer, fmt="json")
        write_snapshot(str(prom_path), telemetry.metrics, fmt="prom")
        assert json.loads(json_path.read_text())["metrics"]
        assert "netconf_client_rpcs" in prom_path.read_text()
        with pytest.raises(ValueError):
            write_snapshot(str(json_path), telemetry.metrics, fmt="xml")

    def test_write_snapshot_accepts_path_and_creates_parents(self,
                                                             tmp_path):
        telemetry = self._populated()
        target = tmp_path / "out" / "nested" / "snap.json"
        write_snapshot(target, telemetry.metrics, fmt="json")
        assert json.loads(target.read_text())["metrics"]

    def test_write_jsonl_accepts_path_and_creates_parents(self,
                                                          tmp_path):
        telemetry = self._populated()
        telemetry.events.info("layer.component", "event.name", "hello")
        target = tmp_path / "logs" / "deep" / "events.jsonl"
        count = telemetry.events.write_jsonl(target)
        assert count >= 1
        lines = target.read_text().splitlines()
        assert json.loads(lines[-1])["message"] == "hello"


class TestSeries:
    def _sampled_registry(self):
        ticks = {"now": 0.0}
        registry = MetricsRegistry(clock=lambda: ticks["now"])
        return registry, ticks

    def test_sample_records_points_per_metric(self):
        registry, ticks = self._sampled_registry()
        counter = registry.counter("netem.link.delivered")
        gauge = registry.gauge("netem.link.queue")
        for step in range(1, 4):
            ticks["now"] = float(step)
            counter.inc(10)
            gauge.set(step * 2)
            registry.sample()
        series = registry.series("netem.link.delivered")
        assert series.points == [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]
        assert registry.series("netem.link.queue").latest() == (3.0, 6.0)
        assert registry.sample_count == 3
        assert sorted(registry.series_names()) == [
            "netem.link.delivered", "netem.link.queue"]

    def test_rate_and_delta_queries(self):
        registry, ticks = self._sampled_registry()
        counter = registry.counter("netconf.client.rpcs")
        for step in range(1, 6):
            ticks["now"] = float(step)
            counter.inc(5)
            registry.sample()
        series = registry.series("netconf.client.rpcs")
        assert series.rate() == pytest.approx(5.0)  # 5 rpcs per second
        assert series.delta() == pytest.approx(20.0)
        # windowed: only the last two points
        assert series.rate(since=4.0) == pytest.approx(5.0)
        assert series.delta(since=4.0) == pytest.approx(5.0)
        # degenerate windows answer None, not garbage
        assert series.rate(since=5.0) is None
        assert registry.series("netconf.client.rpcs").percentile(
            50) == 15.0

    def test_ring_evicts_at_capacity(self):
        registry, ticks = self._sampled_registry()
        registry.series_capacity = 4
        gauge = registry.gauge("netem.link.queue")
        for step in range(10):
            ticks["now"] = float(step)
            gauge.set(step)
            registry.sample()
        series = registry.series("netem.link.queue")
        assert len(series) == 4
        assert series.recorded == 10
        assert series.evicted == 6
        # oldest points are gone: only 6..9 remain
        assert series.values() == [6.0, 7.0, 8.0, 9.0]
        assert series.points[0] == (6.0, 6.0)

    def test_histograms_sample_their_lifetime_count(self):
        registry, ticks = self._sampled_registry()
        hist = registry.histogram("core.orchestrator.deploy_time")
        hist.observe(0.5)
        hist.observe(0.7)
        ticks["now"] = 1.0
        registry.sample()
        assert registry.series(
            "core.orchestrator.deploy_time").latest() == (1.0, 2.0)

    def test_series_requires_existing_metric(self):
        registry, _ticks = self._sampled_registry()
        with pytest.raises(MetricError):
            registry.series("no.such.metric")
        # an existing but never-sampled metric yields an empty series
        registry.counter("netconf.client.rpcs")
        series = registry.series("netconf.client.rpcs")
        assert len(series) == 0
        assert series.latest() is None
        assert "netconf.client.rpcs" not in registry.series_names()

    def test_labelled_series(self):
        registry, ticks = self._sampled_registry()
        registry.counter("telemetry.events.emitted",
                         labels={"severity": "warn"}).inc(3)
        ticks["now"] = 1.0
        registry.sample()
        series = registry.series("telemetry.events.emitted",
                                 labels={"severity": "warn"})
        assert series.latest() == (1.0, 3.0)

    def test_stats_summary(self):
        registry, ticks = self._sampled_registry()
        gauge = registry.gauge("netem.link.queue")
        for step in range(1, 5):
            ticks["now"] = float(step)
            gauge.set(step * 10)
            registry.sample()
        stats = registry.series("netem.link.queue").stats()
        assert stats["points"] == 4
        assert stats["latest"] == 40.0
        assert stats["min"] == 10.0
        assert stats["max"] == 40.0
        assert stats["mean"] == pytest.approx(25.0)
        assert stats["rate"] == pytest.approx(10.0)

    STATS_KEYS = {"points", "recorded", "evicted", "latest", "min",
                  "max", "mean", "p50", "p90", "rate", "delta"}

    def test_empty_ring_queries_are_well_defined(self):
        registry, _ticks = self._sampled_registry()
        registry.gauge("netem.link.queue")
        series = registry.series("netem.link.queue")
        assert series.rate() is None
        assert series.delta() is None
        assert series.percentile(99) is None
        stats = series.stats()
        assert set(stats) == self.STATS_KEYS
        assert stats["points"] == 0
        for key in ("latest", "min", "max", "mean", "p50", "p90",
                    "rate", "delta"):
            assert stats[key] is None, key

    def test_single_sample_ring_queries(self):
        registry, ticks = self._sampled_registry()
        gauge = registry.gauge("netem.link.queue")
        ticks["now"] = 1.0
        gauge.set(7.0)
        registry.sample()
        series = registry.series("netem.link.queue")
        # one point: every percentile is that point, rate/delta need two
        assert series.percentile(0) == 7.0
        assert series.percentile(50) == 7.0
        assert series.percentile(100) == 7.0
        assert series.rate() is None
        assert series.delta() is None
        stats = series.stats()
        assert set(stats) == self.STATS_KEYS
        assert stats["points"] == 1
        assert stats["latest"] == stats["min"] == stats["max"] == 7.0
        assert stats["mean"] == 7.0
        assert stats["p50"] == stats["p90"] == 7.0
        assert stats["rate"] is None and stats["delta"] is None

    def test_zero_time_span_rate_is_none(self):
        registry, ticks = self._sampled_registry()
        gauge = registry.gauge("netem.link.queue")
        ticks["now"] = 2.0
        gauge.set(1.0)
        registry.sample()
        gauge.set(3.0)
        registry.sample()  # same timestamp: two points, zero span
        series = registry.series("netem.link.queue")
        assert len(series) == 2
        assert series.rate() is None
        assert series.delta() == pytest.approx(2.0)
        assert series.stats()["rate"] is None

    def test_percentile_validates_p_even_when_empty(self):
        registry, _ticks = self._sampled_registry()
        registry.gauge("netem.link.queue")
        series = registry.series("netem.link.queue")
        with pytest.raises(MetricError):
            series.percentile(101)
        with pytest.raises(MetricError):
            series.percentile(-1)


class TestTelemetryBundle:
    def test_shares_the_sim_clock(self):
        sim = Simulator()
        telemetry = Telemetry(sim)
        sim.schedule(2.0, lambda: None)
        sim.run(until=3.0)
        counter = telemetry.metrics.counter("layer.component.events")
        counter.inc()
        assert counter.last_updated == 3.0
        with telemetry.tracer.span("op") as span:
            pass
        assert span.start == 3.0

    def test_current_and_set_current(self):
        original = current()
        try:
            replacement = Telemetry()
            assert set_current(replacement) is replacement
            assert current() is replacement
        finally:
            set_current(original)
