"""Tests for Router construction, validation and handler namespace."""

import pytest

from repro.click import (ClickPacket, ConfigError, HandlerError, Router,
                         lookup_element, registered_elements)
from repro.sim import Simulator


class TestConstruction:
    def test_unknown_element_class(self):
        with pytest.raises(ConfigError):
            Router.from_config("x :: NoSuchElement;")

    def test_bad_element_config_surfaces(self):
        with pytest.raises(ConfigError):
            Router.from_config("s :: Strip(not-a-number) -> Discard;"
                               " Idle -> s;")

    def test_port_out_of_range(self):
        # Counter has exactly one output
        with pytest.raises(ConfigError):
            Router.from_config(
                "c :: Counter; Idle -> c; c[1] -> Discard; c[0] -> Discard;")

    def test_double_connected_output_rejected(self):
        with pytest.raises(ConfigError):
            Router.from_config(
                "c :: Counter; Idle -> c;"
                "c -> d1 :: Discard; c -> d2 :: Discard;")

    def test_fan_in_on_push_input_allowed(self):
        router = Router.from_config(
            "a :: InfiniteSource(LIMIT 1); b :: InfiniteSource(LIMIT 1);"
            "c :: Counter; a -> c; b -> c; c -> Discard;")
        assert router.element("c").inputs[0].connected

    def test_unconnected_input_rejected(self):
        with pytest.raises(ConfigError) as exc:
            Router.from_config("c :: Counter; c -> Discard;")
        assert "unconnected" in str(exc.value)

    def test_unconnected_output_rejected(self):
        with pytest.raises(ConfigError):
            Router.from_config("Idle -> c :: Counter;")

    def test_idle_may_dangle(self):
        Router.from_config("i :: Idle;")  # no error

    def test_variable_port_elements_sized_by_connections(self):
        router = Router.from_config(
            "t :: Tee; Idle -> t;"
            "t[0] -> d0 :: Discard; t[1] -> d1 :: Discard;"
            "t[2] -> d2 :: Discard;")
        assert router.element("t").noutputs == 3


class TestPersonalityResolution:
    def test_push_to_pull_conflict(self):
        with pytest.raises(ConfigError) as exc:
            Router.from_config(
                "InfiniteSource(LIMIT 1) -> Shaper(10) -> Discard;")
        assert "Queue" in str(exc.value)

    def test_queue_resolves_boundary(self):
        router = Router.from_config(
            "src :: InfiniteSource(LIMIT 1) -> Queue -> Shaper(10)"
            " -> Unqueue -> Discard;")
        assert router is not None

    def test_agnostic_inherits_push(self):
        router = Router.from_config(
            "src :: InfiniteSource(LIMIT 1) -> c :: Counter -> Discard;")
        element = router.element("c")
        assert element.inputs[0].resolved == "push"
        assert element.outputs[0].resolved == "push"

    def test_agnostic_inherits_pull(self):
        router = Router.from_config(
            "src :: InfiniteSource(LIMIT 1) -> Queue"
            " -> c :: Counter -> Unqueue -> Discard;")
        element = router.element("c")
        assert element.inputs[0].resolved == "pull"

    def test_agnostic_conflict_through_element(self):
        # a Counter cannot be push on the input side and pull on the
        # output side at once
        with pytest.raises(ConfigError):
            Router.from_config(
                "InfiniteSource(LIMIT 1) -> c :: Counter"
                " -> Shaper(5) -> Unqueue -> Discard;")

    def test_pull_fan_in_rejected(self):
        with pytest.raises(ConfigError):
            Router.from_config(
                "s1 :: InfiniteSource(LIMIT 1) -> q1 :: Queue;"
                "s2 :: InfiniteSource(LIMIT 1) -> q2 :: Queue;"
                "u :: Unqueue -> Discard;"
                "q1 -> u; q2 -> u;")


class TestHandlers:
    def test_read_handler_path(self):
        router = Router.from_config(
            "src :: InfiniteSource(LIMIT 2) -> c :: Counter -> Discard;")
        router.start()
        router.sim.run(until=1.0)
        assert router.read_handler("c.count") == "2"

    def test_default_handlers_exist(self):
        router = Router.from_config("i :: Idle;")
        assert router.read_handler("i.class") == "Idle"
        assert router.read_handler("i.config") == ""

    def test_write_handler(self):
        router = Router.from_config(
            "src :: InfiniteSource(LIMIT 5) -> c :: Counter -> Discard;")
        router.start()
        router.sim.run(until=1.0)
        router.write_handler("c.reset", "")
        assert router.read_handler("c.count") == "0"

    def test_missing_element(self):
        router = Router.from_config("i :: Idle;")
        with pytest.raises(HandlerError):
            router.read_handler("ghost.count")

    def test_missing_handler(self):
        router = Router.from_config("i :: Idle;")
        with pytest.raises(HandlerError):
            router.read_handler("i.nonexistent")

    def test_malformed_path(self):
        router = Router.from_config("i :: Idle;")
        with pytest.raises(HandlerError):
            router.read_handler("justonename")

    def test_handlers_listing(self):
        router = Router.from_config(
            "Idle -> q :: Queue -> Unqueue -> Discard;")
        listing = router.handlers()
        reads, writes = listing["q"]
        assert "length" in reads
        assert "reset" in writes


class TestLifecycle:
    def test_start_idempotent(self):
        router = Router.from_config(
            "src :: InfiniteSource(LIMIT 1) -> Discard;")
        router.start()
        router.start()
        router.sim.run(until=1.0)
        assert router.read_handler("src.count") == "1"

    def test_stop_halts_sources(self):
        sim = Simulator()
        router = Router.from_config(
            "src :: RatedSource(RATE 100) -> c :: Counter -> Discard;",
            sim=sim)
        router.start()
        sim.run(until=0.1)
        count_at_stop = int(router.read_handler("c.count"))
        router.stop()
        sim.run(until=1.0)
        assert int(router.read_handler("c.count")) == count_at_stop

    def test_flat_config_regenerates(self):
        router = Router.from_config(
            "src :: InfiniteSource(LIMIT 1) -> Discard;")
        flat = router.flat_config()
        assert "src :: InfiniteSource" in flat
        assert "->" in flat or "[0]" in flat


class TestRegistry:
    def test_stock_library_registered(self):
        names = registered_elements()
        for expected in ("Counter", "Queue", "IPFilter", "IPRewriter",
                         "FromDevice", "ToDevice", "StringMatcher"):
            assert expected in names

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigError):
            lookup_element("Bogus")


class TestClickPacket:
    def test_parsed_view_cached_and_invalidated(self):
        from repro.packet import Ethernet
        frame = Ethernet(src="00:00:00:00:00:01",
                         dst="00:00:00:00:00:02", type=0x0800)
        packet = ClickPacket(frame.pack())
        first = packet.parsed()
        assert first is packet.parsed()  # cached
        packet.data = b""
        assert packet.parsed() is None  # invalidated

    def test_clone_is_independent(self):
        packet = ClickPacket(b"abc")
        packet.paint = 5
        clone = packet.clone()
        clone.paint = 9
        assert packet.paint == 5
        assert clone.data == b"abc"

    def test_from_header(self):
        from repro.packet import Ethernet
        packet = ClickPacket.from_header(Ethernet(type=0x1234))
        assert len(packet) == 14
