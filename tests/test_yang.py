"""Tests for the YANG parser, schema compiler and instance validation."""

import xml.etree.ElementTree as ET

import pytest

from repro.netconf.yang import (ValidationError, YangSyntaxError,
                                compile_module, parse_yang)
from repro.netconf.vnf_yang import VNF_NS, VNF_YANG

SIMPLE_MODULE = """
module demo {
  namespace "urn:demo";
  prefix "d";

  typedef percent {
    type uint8 { range "0..100"; }
  }

  container settings {
    leaf name { type string { length "1..16"; } }
    leaf level { type percent; }
    leaf enabled { type boolean; }
    leaf mode {
      type enumeration {
        enum fast;
        enum slow;
      }
    }
    list rule {
      key id;
      leaf id { type string; }
      leaf action { type string; }
    }
  }

  rpc reboot {
    input {
      leaf delay { type uint16; default "0"; }
      leaf reason { type string; mandatory true; }
    }
    output {
      leaf status { type string; }
    }
  }
}
"""


def el(tag, text=None, ns="urn:demo", children=()):
    node = ET.Element("{%s}%s" % (ns, tag))
    if text is not None:
        node.text = text
    for child in children:
        node.append(child)
    return node


class TestParser:
    def test_statement_tree(self):
        root = parse_yang(SIMPLE_MODULE)
        assert root.keyword == "module"
        assert root.argument == "demo"
        assert root.arg_of("namespace") == "urn:demo"

    def test_nested_statements(self):
        root = parse_yang(SIMPLE_MODULE)
        container = root.find_one("container")
        assert container.argument == "settings"
        assert len(container.find_all("leaf")) == 4

    def test_comments_ignored(self):
        root = parse_yang("""
        module m { // a line comment
          namespace "urn:m"; /* block
             comment */ prefix "m";
        }""")
        assert root.arg_of("prefix") == "m"

    def test_string_concatenation(self):
        root = parse_yang('module m { namespace "urn:" + "joined";'
                          ' prefix "m"; }')
        assert root.arg_of("namespace") == "urn:joined"

    def test_escaped_string(self):
        root = parse_yang(r'module m { namespace "a\"b"; prefix "m"; }')
        assert root.arg_of("namespace") == 'a"b'

    def test_missing_brace_rejected(self):
        with pytest.raises(YangSyntaxError):
            parse_yang("module m { namespace 'urn:m';")

    def test_top_level_must_be_module(self):
        with pytest.raises(YangSyntaxError):
            parse_yang("container c { leaf x { type string; } }")

    def test_two_top_level_rejected(self):
        with pytest.raises(YangSyntaxError):
            parse_yang("module a { prefix a; } module b { prefix b; }")


class TestCompile:
    def test_module_structure(self):
        module = compile_module(parse_yang(SIMPLE_MODULE))
        assert module.name == "demo"
        assert module.namespace == "urn:demo"
        assert "settings" in module.top
        assert "reboot" in module.rpcs

    def test_typedef_resolution(self):
        module = compile_module(parse_yang(SIMPLE_MODULE))
        level = module.top["settings"].children["level"]
        assert level.type.int_range == (0, 100)

    def test_list_keys_extracted(self):
        module = compile_module(parse_yang(SIMPLE_MODULE))
        assert module.list_keys() == {"rule": "id"}

    def test_rpc_schema(self):
        module = compile_module(parse_yang(SIMPLE_MODULE))
        rpc = module.rpc("reboot")
        assert set(rpc.input.children) == {"delay", "reason"}
        assert set(rpc.output.children) == {"status"}

    def test_unknown_rpc_raises(self):
        module = compile_module(parse_yang(SIMPLE_MODULE))
        with pytest.raises(ValidationError):
            module.rpc("shutdown")


class TestValidation:
    def setup_method(self):
        self.module = compile_module(parse_yang(SIMPLE_MODULE))

    def test_valid_container(self):
        self.module.validate_data(el("settings", children=[
            el("name", "box-1"), el("level", "50"),
            el("enabled", "true"), el("mode", "fast")]))

    def test_unknown_top_level_rejected(self):
        with pytest.raises(ValidationError):
            self.module.validate_data(el("mystery"))

    def test_unknown_child_rejected(self):
        with pytest.raises(ValidationError):
            self.module.validate_data(el("settings", children=[
                el("surprise", "x")]))

    def test_integer_range_enforced(self):
        with pytest.raises(ValidationError):
            self.module.validate_data(el("settings", children=[
                el("level", "150")]))

    def test_non_integer_rejected(self):
        with pytest.raises(ValidationError):
            self.module.validate_data(el("settings", children=[
                el("level", "many")]))

    def test_boolean_enforced(self):
        with pytest.raises(ValidationError):
            self.module.validate_data(el("settings", children=[
                el("enabled", "maybe")]))

    def test_enumeration_enforced(self):
        self.module.validate_data(el("settings", children=[
            el("mode", "slow")]))
        with pytest.raises(ValidationError):
            self.module.validate_data(el("settings", children=[
                el("mode", "medium")]))

    def test_string_length_enforced(self):
        with pytest.raises(ValidationError):
            self.module.validate_data(el("settings", children=[
                el("name", "x" * 17)]))

    def test_list_entry_needs_key(self):
        with pytest.raises(ValidationError):
            self.module.validate_data(el("settings", children=[
                el("rule", children=[el("action", "drop")])]))

    def test_list_entry_with_key_ok(self):
        self.module.validate_data(el("settings", children=[
            el("rule", children=[el("id", "r1"),
                                 el("action", "drop")])]))

    def test_rpc_input_mandatory_enforced(self):
        operation = el("reboot", children=[el("delay", "5")])
        with pytest.raises(ValidationError) as exc:
            self.module.validate_rpc_input("reboot", operation)
        assert "reason" in str(exc.value)

    def test_rpc_input_valid(self):
        operation = el("reboot", children=[el("reason", "maintenance")])
        self.module.validate_rpc_input("reboot", operation)

    def test_rpc_input_type_checked(self):
        operation = el("reboot", children=[el("reason", "x"),
                                           el("delay", "never")])
        with pytest.raises(ValidationError):
            self.module.validate_rpc_input("reboot", operation)


class TestVNFModule:
    def test_vnf_yang_compiles(self):
        module = compile_module(parse_yang(VNF_YANG))
        assert module.name == "vnf"
        assert module.namespace == VNF_NS
        for rpc_name in ("startVNF", "stopVNF", "connectVNF",
                         "disconnectVNF", "getVNFInfo", "listHandlers",
                         "writeVNFHandler"):
            assert rpc_name in module.rpcs

    def test_vnf_list_keys(self):
        module = compile_module(parse_yang(VNF_YANG))
        keys = module.list_keys()
        assert keys["vnf"] == "id"
        assert keys["device"] == "name"

    def test_status_enumeration(self):
        module = compile_module(parse_yang(VNF_YANG))

        def vnf_el(tag, text=None, children=()):
            node = ET.Element("{%s}%s" % (VNF_NS, tag))
            if text is not None:
                node.text = text
            for child in children:
                node.append(child)
            return node

        good = vnf_el("vnfs", children=[
            vnf_el("vnf", children=[vnf_el("id", "v1"),
                                    vnf_el("status", "UP")])])
        module.validate_data(good)
        bad = vnf_el("vnfs", children=[
            vnf_el("vnf", children=[vnf_el("id", "v1"),
                                    vnf_el("status", "SLEEPING")])])
        with pytest.raises(ValidationError):
            module.validate_data(bad)

    def test_start_vnf_input_validation(self):
        module = compile_module(parse_yang(VNF_YANG))
        operation = ET.Element("{%s}startVNF" % VNF_NS)
        ET.SubElement(operation, "{%s}id" % VNF_NS).text = "v1"
        with pytest.raises(ValidationError):
            module.validate_rpc_input("startVNF", operation)
        ET.SubElement(operation,
                      "{%s}click-config" % VNF_NS).text = "Idle;"
        module.validate_rpc_input("startVNF", operation)
