"""Failure injection: degraded links, dead transports, broken deploys.

The framework must degrade predictably — chains survive loss, deploy
failures roll back completely, management-plane failures surface as
errors rather than hangs.
"""

import pytest

from repro.core import ESCAPE, OrchestratorError
from repro.core.sgfile import load_service_graph, load_topology

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 4, "mem": 2048},
        {"name": "nc2", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.002},
        {"from": "h2", "to": "s2", "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc2", "to": "s2", "delay": 0.0005},
        {"from": "nc2", "to": "s2", "delay": 0.0005},
    ],
}


def simple_sg(name="fi-chain"):
    return load_service_graph({
        "name": name,
        "saps": ["h1", "h2"],
        "vnfs": [{"name": "fw", "type": "firewall",
                  "params": {"rules": "allow all"}}],
        "chain": ["h1", "fw", "h2"],
    })


@pytest.fixture
def escape():
    framework = ESCAPE.from_topology(load_topology(TOPOLOGY))
    framework.start()
    return framework


def spine_link(net):
    for link in net.links:
        names = {link.intf1.node.name, link.intf2.node.name}
        if names == {"s1", "s2"}:
            return link
    raise AssertionError("no spine link")


class TestDegradedLinks:
    def test_chain_survives_partial_loss(self, escape):
        escape.deploy_service(simple_sg())
        spine_link(escape.net).loss = 0.3
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        result = h1.ping(h2.ip, count=20, interval=0.1)
        escape.run(5.0)
        # some loss, but the chain keeps working for surviving packets
        assert 0 < result.received < 20

    def test_link_down_blackholes_then_recovers(self, escape):
        escape.deploy_service(simple_sg())
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        link = spine_link(escape.net)
        link.set_up(False)
        dead = h1.ping(h2.ip, count=3, interval=0.1)
        escape.run(2.0)
        assert dead.received == 0
        link.set_up(True)
        alive = h1.ping(h2.ip, count=3, interval=0.1)
        escape.run(2.0)
        assert alive.received == 3

    def test_cut_link_disappears_from_discovery(self, escape):
        escape.run(2.0)
        assert len(escape.discovery.links()) == 1
        spine_link(escape.net).set_up(False)
        escape.run(10.0)
        assert len(escape.discovery.links()) == 0


class TestDeployFailures:
    def test_interface_exhaustion_rolls_back(self, escape):
        """The view believes interfaces are free, but a rogue process
        occupied them: connectVNF fails mid-deploy and everything the
        deploy touched is rolled back."""
        container = escape.net.get("nc1")
        # occupy nc1's interfaces out-of-band
        hog = container.start_vnf(
            "hog", "FromDevice(in0) -> Counter -> ToDevice(out0);",
            ["in0", "out0"], cpu=0.1, mem=16)
        for intf_name, device in zip(list(container.interfaces),
                                     ["in0", "out0"]):
            container.connect_vnf("hog", device, intf_name)
        # ... same for nc2
        container2 = escape.net.get("nc2")
        container2.start_vnf(
            "hog2", "FromDevice(in0) -> Counter -> ToDevice(out0);",
            ["in0", "out0"], cpu=0.1, mem=16)
        for intf_name, device in zip(list(container2.interfaces),
                                     ["in0", "out0"]):
            container2.connect_vnf("hog2", device, intf_name)

        with pytest.raises(OrchestratorError):
            escape.deploy_service(simple_sg())
        # the failed deploy left no VNFs of its own behind
        assert set(container.vnfs) == {"hog"}
        assert set(container2.vnfs) == {"hog2"}
        # no steering paths remain
        assert escape.steering.paths == {}
        # and resources were released in the view
        for snapshot in escape.orchestrator.view.snapshot().values():
            assert snapshot["cpu_used"] == pytest.approx(0.0)

    def test_failed_deploy_does_not_block_retry(self, escape):
        bad = simple_sg("retry-chain")
        bad.vnfs["fw"].cpu = 1000.0
        from repro.core import MappingError
        with pytest.raises(MappingError):
            escape.deploy_service(bad)
        good = simple_sg("retry-chain")
        chain = escape.deploy_service(good)
        assert chain.active


class TestManagementPlaneFailures:
    def test_dead_agent_transport_times_out(self, escape):
        chain = escape.deploy_service(simple_sg())
        container_name = chain.mapping.vnf_placement["fw"]
        client = escape.netconf_clients[container_name]
        client.transport.closed = True  # silently sever the pipe
        from repro.netconf import NetconfError
        with pytest.raises(NetconfError):
            chain.read_handler("fw", "fw.passed")

    def test_monitor_counts_poll_errors(self, escape):
        chain = escape.deploy_service(simple_sg())
        monitor = escape.monitor(chain, interval=0.2)
        monitor.watch("fw", "no_such_element.count")
        monitor.start()
        escape.run(1.0)
        monitor.stop()
        assert monitor.poll_errors > 0
        # the bad handler produced no samples, good ones still work
        assert monitor.series[("fw", "no_such_element.count")] == []
        assert monitor.latest("fw", "cnt_in.count") is not None

    def test_stopping_vnf_outside_orchestrator_surfaces(self, escape):
        """An operator killing the VNF behind the orchestrator's back:
        handler reads turn into RpcErrors, not silent garbage."""
        chain = escape.deploy_service(simple_sg())
        container = escape.net.get(chain.mapping.vnf_placement["fw"])
        vnf_id = chain.vnfs["fw"].vnf_id
        container.stop_vnf(vnf_id)
        from repro.netconf import RpcError
        with pytest.raises(RpcError):
            chain.read_handler("fw", "fw.passed")


class TestControlPlaneFailures:
    def test_switch_disconnect_blocks_new_paths(self, escape):
        escape.nexus.disconnect(1)
        from repro.core import MappingError
        with pytest.raises((OrchestratorError, Exception)):
            escape.deploy_service(simple_sg())

    def test_learning_survives_without_steered_chain(self, escape):
        """Plain traffic keeps flowing when no chain is deployed even
        after flow tables are cleared (controller re-populates)."""
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        first = h1.ping(h2.ip, count=2, interval=0.2)
        escape.run(2.0)
        assert first.received == 2
        for switch in escape.net.switches():
            switch.datapath.table.entries = [
                entry for entry in switch.datapath.table.entries
                if entry.priority >= 0x3000]  # keep guards only
        second = h1.ping(h2.ip, count=2, interval=0.2)
        escape.run(2.0)
        assert second.received == 2
