"""Tests for the extension features: bidirectional chains, live VNF
migration, and discovery-based topology verification."""

import pytest

from repro.core import ESCAPE, OrchestratorError
from repro.core.sgfile import load_service_graph, load_topology

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 4, "mem": 2048},
        {"name": "nc2", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "delay": 0.001},
        {"from": "s1", "to": "s2", "delay": 0.002},
        {"from": "h2", "to": "s2", "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc2", "to": "s2", "delay": 0.0005},
        {"from": "nc2", "to": "s2", "delay": 0.0005},
        {"from": "nc2", "to": "s2", "delay": 0.0005},
        {"from": "nc2", "to": "s2", "delay": 0.0005},
    ],
}


def bidir_sg(name="bidir-chain"):
    return load_service_graph({
        "name": name,
        "saps": ["h1", "h2"],
        "vnfs": [{"name": "fwd", "type": "forwarder_bidir"}],
        "chain": ["h1", "fwd", "h2"],
    })


@pytest.fixture
def escape():
    framework = ESCAPE.from_topology(load_topology(TOPOLOGY))
    framework.start()
    return framework


@pytest.fixture
def quiet_escape():
    """ESCAPE with discovery quiesced after the first probe round, so
    LLDP floods don't pollute per-VNF counters."""
    framework = ESCAPE.from_topology(load_topology(TOPOLOGY),
                                     discovery_interval=3600.0)
    framework.start()
    return framework


class TestBidirectionalChain:
    def test_replies_traverse_the_chain(self, escape):
        chain = escape.deploy_service(bidir_sg(), return_path="chain")
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        result = h1.ping(h2.ip, count=4, interval=0.2)
        escape.run(3.0)
        assert result.received == 4
        # forward direction crossed in0 -> out0
        assert int(chain.read_handler("fwd", "cnt_in.count")) >= 4
        # replies crossed out0 -> in0 (the reverse pipeline)
        assert int(chain.read_handler("fwd", "cnt_rev.count")) >= 4

    def test_direct_return_bypasses_vnf(self, quiet_escape):
        escape = quiet_escape
        chain = escape.deploy_service(bidir_sg("direct-chain"),
                                      return_path="direct")
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        result = h1.ping(h2.ip, count=4, interval=0.2)
        escape.run(3.0)
        assert result.received == 4
        assert int(chain.read_handler("fwd", "cnt_rev.count")) == 0

    def test_chain_return_rtt_exceeds_direct(self, escape):
        chain_rp = escape.deploy_service(bidir_sg("rtt-chain"),
                                         return_path="chain")
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        through_chain = h1.ping(h2.ip, count=3, interval=0.2)
        escape.run(2.0)
        chain_rp.undeploy()
        escape.run(0.1)
        direct = escape.deploy_service(bidir_sg("rtt-direct"),
                                       return_path="direct")
        direct_result = h1.ping(h2.ip, count=3, interval=0.2)
        escape.run(2.0)
        assert through_chain.avg_rtt > direct_result.avg_rtt


class TestMigration:
    def _deploy(self, escape, name="mig-chain"):
        sg = load_service_graph({
            "name": name,
            "saps": ["h1", "h2"],
            "vnfs": [{"name": "fw", "type": "firewall",
                      "params": {"rules": "allow icmp, drop all"}}],
            "chain": ["h1", "fw", "h2"],
        })
        return escape.deploy_service(sg)

    def test_migrate_moves_the_vnf(self, escape):
        chain = self._deploy(escape)
        source = chain.mapping.vnf_placement["fw"]
        target = "nc2" if source == "nc1" else "nc1"
        chain.migrate("fw", target)
        assert chain.mapping.vnf_placement["fw"] == target
        # new instance runs on the target, old one is gone
        assert len(escape.net.get(target).vnfs) == 1
        assert len(escape.net.get(source).vnfs) == 0

    def test_traffic_flows_after_migration(self, escape):
        chain = self._deploy(escape)
        source = chain.mapping.vnf_placement["fw"]
        target = "nc2" if source == "nc1" else "nc1"
        chain.migrate("fw", target)
        escape.run(0.1)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        result = h1.ping(h2.ip, count=4, interval=0.2)
        escape.run(3.0)
        assert result.received == 4
        # and the *new* instance is doing the filtering
        assert int(chain.read_handler("fw", "fw.passed")) >= 4
        h1.send_udp(h2.ip, 9999, b"still blocked?")
        escape.run(0.5)
        assert h2.udp_rx_count == 0

    def test_resources_move_with_the_vnf(self, escape):
        chain = self._deploy(escape)
        source = chain.mapping.vnf_placement["fw"]
        target = "nc2" if source == "nc1" else "nc1"
        chain.migrate("fw", target)
        snapshot = escape.orchestrator.view.snapshot()
        assert snapshot[source]["cpu_used"] == pytest.approx(0.0)
        assert snapshot[target]["cpu_used"] == pytest.approx(0.5)

    def test_migrate_to_same_container_is_noop(self, escape):
        chain = self._deploy(escape)
        source = chain.mapping.vnf_placement["fw"]
        old_vnf_id = chain.vnfs["fw"].vnf_id
        chain.migrate("fw", source)
        assert chain.vnfs["fw"].vnf_id == old_vnf_id

    def test_migrate_to_full_container_fails_cleanly(self, escape):
        chain = self._deploy(escape)
        source = chain.mapping.vnf_placement["fw"]
        target = "nc2" if source == "nc1" else "nc1"
        # fill the target
        filler = escape.net.get(target)
        filler_budget = filler.budget
        filler_budget.reserve("hog", filler_budget.cpu_free - 0.1,
                              filler_budget.mem_free - 1.0)
        escape.orchestrator.view.reserve_container(
            target, escape.orchestrator.view.graph.nodes[target]["cpu"]
            - escape.orchestrator.view.graph.nodes[target]["cpu_used"]
            - 0.1, 0.0)
        with pytest.raises(OrchestratorError):
            chain.migrate("fw", target)
        # chain still on the source and functional
        assert chain.mapping.vnf_placement["fw"] == source
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        result = h1.ping(h2.ip, count=2, interval=0.2)
        escape.run(2.0)
        assert result.received == 2

    def test_migrate_unknown_vnf(self, escape):
        chain = self._deploy(escape)
        with pytest.raises(OrchestratorError):
            chain.migrate("ghost", "nc2")

    def test_migrate_unknown_target(self, escape):
        chain = self._deploy(escape)
        with pytest.raises(OrchestratorError):
            chain.migrate("fw", "nowhere")

    def test_undeploy_after_migration_cleans_up(self, escape):
        chain = self._deploy(escape)
        source = chain.mapping.vnf_placement["fw"]
        target = "nc2" if source == "nc1" else "nc1"
        chain.migrate("fw", target)
        chain.undeploy()
        escape.run(0.1)
        for container in escape.net.vnf_containers():
            assert container.vnfs == {}
        snapshot = escape.orchestrator.view.snapshot()
        assert snapshot[target]["cpu_used"] == pytest.approx(0.0)
        steering_entries = [entry
                            for switch in escape.net.switches()
                            for entry in switch.datapath.table.entries
                            if entry.priority >= 0x6000]
        assert steering_entries == []


class TestTopologyVerification:
    def test_matches_after_discovery_converges(self, escape):
        escape.run(2.0)
        report = escape.orchestrator.verify_topology(escape.discovery)
        assert report == {"missing": [], "unexpected": []}

    def test_cut_link_reported_missing(self, escape):
        escape.run(2.0)
        for link in escape.net.links:
            if link.intf1.node.name.startswith("s") \
                    and link.intf2.node.name.startswith("s"):
                link.set_up(False)
        escape.run(10.0)  # discovery times the adjacency out
        report = escape.orchestrator.verify_topology(escape.discovery)
        assert report["missing"] == [("s1", "s2")]
        assert report["unexpected"] == []

    def test_before_discovery_everything_missing(self):
        # not started yet: no LLDP has flowed, adjacency is empty
        framework = ESCAPE.from_topology(load_topology(TOPOLOGY))
        report = framework.orchestrator.verify_topology(
            framework.discovery)
        assert ("s1", "s2") in report["missing"]
