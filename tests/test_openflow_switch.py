"""Tests for the flow table and the OpenFlow switch datapath."""

import pytest

from repro.openflow import (BarrierReply, BarrierRequest, ControllerChannel,
                            EchoReply, EchoRequest, FeaturesReply, FlowEntry,
                            FlowMod, FlowRemoved, FlowStatsReply,
                            FlowStatsRequest, FlowTable, Hello, Match,
                            OpenFlowSwitch, Output, PacketIn, PacketOut,
                            PortStatsReply, PortStatsRequest, PortStatus,
                            OFPP_CONTROLLER, OFPP_FLOOD, OFPP_IN_PORT)
from repro.packet import Ethernet, IPv4, UDP
from repro.sim import Simulator


def frame_bytes(dst="00:00:00:00:00:02", src="00:00:00:00:00:01",
                dstip="10.0.0.2"):
    return Ethernet(src=src, dst=dst, type=Ethernet.IP_TYPE,
                    payload=IPv4(srcip="10.0.0.1", dstip=dstip,
                                 protocol=IPv4.UDP_PROTOCOL,
                                 payload=UDP(srcport=1, dstport=2))).pack()


class TestFlowTable:
    def test_priority_order(self):
        table = FlowTable()
        table.add(FlowEntry(Match(), [Output(1)], priority=10))
        table.add(FlowEntry(Match(nw_dst="10.0.0.2"), [Output(2)],
                            priority=100))
        entry = table.lookup(frame_bytes(), in_port=1, now=0.0)
        assert entry.actions == [Output(2)]

    def test_add_replaces_same_match_and_priority(self):
        table = FlowTable()
        table.add(FlowEntry(Match(in_port=1), [Output(1)], priority=5))
        table.add(FlowEntry(Match(in_port=1), [Output(9)], priority=5))
        assert len(table) == 1
        assert table.entries[0].actions == [Output(9)]

    def test_hard_timeout_expires(self):
        table = FlowTable()
        table.add(FlowEntry(Match(), [Output(1)], hard_timeout=5.0,
                            installed_at=0.0))
        assert table.lookup(frame_bytes(), 1, now=4.9) is not None
        assert table.lookup(frame_bytes(), 1, now=5.1) is None

    def test_idle_timeout_refreshed_by_hits(self):
        table = FlowTable()
        entry = FlowEntry(Match(), [Output(1)], idle_timeout=2.0,
                          installed_at=0.0)
        table.add(entry)
        hit = table.lookup(frame_bytes(), 1, now=1.5)
        hit.note_hit(100, 1.5)
        assert table.lookup(frame_bytes(), 1, now=3.0) is not None
        assert table.lookup(frame_bytes(), 1, now=6.0) is None

    def test_expiry_callback(self):
        removed = []
        table = FlowTable(on_removed=lambda e, r: removed.append((e, r)))
        table.add(FlowEntry(Match(), [Output(1)], hard_timeout=1.0))
        table.expire(now=2.0)
        assert len(removed) == 1
        assert removed[0][1] == FlowRemoved.REASON_HARD_TIMEOUT

    def test_delete_loose(self):
        table = FlowTable()
        table.add(FlowEntry(Match(in_port=1, nw_dst="10.0.0.2"),
                            [Output(1)]))
        table.add(FlowEntry(Match(in_port=2), [Output(2)]))
        removed = table.delete(Match(nw_dst="10.0.0.2"))
        assert removed == 1
        assert len(table) == 1

    def test_delete_strict_requires_exact(self):
        table = FlowTable()
        table.add(FlowEntry(Match(in_port=1), [Output(1)], priority=7))
        assert table.delete(Match(in_port=1), strict=True, priority=8) == 0
        assert table.delete(Match(in_port=1), strict=True, priority=7) == 1

    def test_modify_updates_actions(self):
        table = FlowTable()
        table.add(FlowEntry(Match(in_port=1), [Output(1)]))
        updated = table.modify(Match(), [Output(5)])
        assert updated == 1
        assert table.entries[0].actions == [Output(5)]

    def test_stats_filtering(self):
        table = FlowTable()
        table.add(FlowEntry(Match(in_port=1), [Output(1)]))
        table.add(FlowEntry(Match(in_port=2), [Output(2)]))
        assert len(table.stats()) == 2
        assert len(table.stats(Match(in_port=1))) == 1


class HarnessedSwitch:
    """A switch with a recording controller and capture ports."""

    def __init__(self, ports=2):
        self.sim = Simulator()
        self.switch = OpenFlowSwitch(self.sim, dpid=1)
        self.sent = {n: [] for n in range(1, ports + 1)}
        for n in range(1, ports + 1):
            port = self.switch.add_port(n)
            port.transmit = self.sent[n].append
        self.channel = ControllerChannel(self.sim)
        self.received = []
        self.channel.set_controller_receiver(self.received.append)
        self.switch.connect_controller(self.channel)
        self.sim.run(until=0.01)

    def run(self, duration=0.01):
        self.sim.run(until=self.sim.now + duration)

    def messages(self, kind):
        return [m for m in self.received if isinstance(m, kind)]


class TestHandshake:
    def test_hello_sent_on_connect(self):
        harness = HarnessedSwitch()
        assert harness.messages(Hello)

    def test_features_reply(self):
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(
            __import__("repro.openflow.messages", fromlist=["x"]
                       ).FeaturesRequest())
        harness.run()
        replies = harness.messages(FeaturesReply)
        assert replies and replies[0].dpid == 1
        assert len(replies[0].ports) == 2

    def test_echo(self):
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(EchoRequest(b"ping-me"))
        harness.run()
        replies = harness.messages(EchoReply)
        assert replies and replies[0].data == b"ping-me"

    def test_barrier(self):
        harness = HarnessedSwitch()
        request = BarrierRequest()
        harness.channel.send_to_switch(request)
        harness.run()
        replies = harness.messages(BarrierReply)
        assert replies and replies[0].xid == request.xid

    def test_port_add_notification_when_connected(self):
        harness = HarnessedSwitch()
        harness.switch.add_port(9)
        harness.run()
        notices = harness.messages(PortStatus)
        assert any(n.desc.port_no == 9 for n in notices)


class TestDatapath:
    def test_miss_generates_packet_in_with_buffer(self):
        harness = HarnessedSwitch()
        harness.switch.ports[1].receive(frame_bytes())
        harness.run()
        packet_ins = harness.messages(PacketIn)
        assert len(packet_ins) == 1
        assert packet_ins[0].in_port == 1
        assert packet_ins[0].buffer_id is not None

    def test_miss_without_controller_drops(self):
        sim = Simulator()
        switch = OpenFlowSwitch(sim, dpid=2)
        switch.add_port(1).transmit = lambda d: None
        switch.ports[1].receive(frame_bytes())
        assert switch.dropped_count == 1

    def test_flow_mod_installs_and_forwards(self):
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(FlowMod(
            Match(dl_dst="00:00:00:00:00:02"), [Output(2)]))
        harness.run()
        harness.switch.ports[1].receive(frame_bytes())
        assert len(harness.sent[2]) == 1
        assert harness.switch.packet_in_count == 0

    def test_flow_mod_with_buffer_releases_packet(self):
        harness = HarnessedSwitch()
        harness.switch.ports[1].receive(frame_bytes())
        harness.run()
        packet_in = harness.messages(PacketIn)[0]
        harness.channel.send_to_switch(FlowMod(
            Match(), [Output(2)], buffer_id=packet_in.buffer_id))
        harness.run()
        assert len(harness.sent[2]) == 1

    def test_packet_out_with_data(self):
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(PacketOut(
            actions=[Output(1)], data=frame_bytes()))
        harness.run()
        assert len(harness.sent[1]) == 1

    def test_packet_out_flood_excludes_in_port(self):
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(PacketOut(
            actions=[Output(OFPP_FLOOD)], data=frame_bytes(), in_port=1))
        harness.run()
        assert len(harness.sent[1]) == 0
        assert len(harness.sent[2]) == 1

    def test_output_in_port(self):
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(FlowMod(
            Match(), [Output(OFPP_IN_PORT)]))
        harness.run()
        harness.switch.ports[1].receive(frame_bytes())
        assert len(harness.sent[1]) == 1

    def test_output_controller_action(self):
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(FlowMod(
            Match(), [Output(OFPP_CONTROLLER)]))
        harness.run()
        harness.switch.ports[1].receive(frame_bytes())
        harness.run()
        assert any(p.reason == PacketIn.REASON_ACTION
                   for p in harness.messages(PacketIn))

    def test_empty_action_list_drops(self):
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(FlowMod(Match(), []))
        harness.run()
        before = harness.switch.dropped_count
        harness.switch.ports[1].receive(frame_bytes())
        assert harness.switch.dropped_count == before + 1

    def test_flow_removed_notification(self):
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(FlowMod(
            Match(in_port=1), [Output(2)], hard_timeout=0.2,
            flags=FlowMod.SEND_FLOW_REM))
        harness.run()
        harness.run(1.0)  # let the expiry sweep fire
        removed = harness.messages(FlowRemoved)
        assert removed
        assert removed[0].reason == FlowRemoved.REASON_HARD_TIMEOUT

    def test_delete_command(self):
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(FlowMod(
            Match(in_port=1), [Output(2)]))
        harness.run()
        assert len(harness.switch.table) == 1
        harness.channel.send_to_switch(FlowMod(
            Match(), command=FlowMod.DELETE))
        harness.run()
        assert len(harness.switch.table) == 0

    def test_flow_stats(self):
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(FlowMod(
            Match(dl_dst="00:00:00:00:00:02"), [Output(2)]))
        harness.run()
        harness.switch.ports[1].receive(frame_bytes())
        harness.switch.ports[1].receive(frame_bytes())
        harness.channel.send_to_switch(FlowStatsRequest())
        harness.run()
        stats = harness.messages(FlowStatsReply)[0].stats
        assert stats[0].packet_count == 2
        assert stats[0].byte_count > 0

    def test_port_stats(self):
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(FlowMod(Match(), [Output(2)]))
        harness.run()
        harness.switch.ports[1].receive(frame_bytes())
        harness.channel.send_to_switch(PortStatsRequest())
        harness.run()
        stats = {s.port_no: s
                 for s in harness.messages(PortStatsReply)[0].stats}
        assert stats[1].rx_packets == 1
        assert stats[2].tx_packets == 1

    def test_down_port_drops(self):
        harness = HarnessedSwitch()
        harness.channel.send_to_switch(FlowMod(Match(), [Output(2)]))
        harness.run()
        harness.switch.ports[2].up = False
        harness.switch.ports[1].receive(frame_bytes())
        assert len(harness.sent[2]) == 0

    def test_duplicate_port_number_rejected(self):
        harness = HarnessedSwitch()
        with pytest.raises(ValueError):
            harness.switch.add_port(1)


class TestChannel:
    def test_latency_delays_delivery(self):
        sim = Simulator()
        channel = ControllerChannel(sim, latency=0.5)
        channel.connect()
        received = []
        channel.set_controller_receiver(
            lambda m: received.append((sim.now, m)))
        channel.send_to_controller("msg")
        sim.run(until=0.4)
        assert received == []
        sim.run(until=0.6)
        assert received[0][0] == pytest.approx(0.5)

    def test_disconnected_channel_drops(self):
        sim = Simulator()
        channel = ControllerChannel(sim)
        received = []
        channel.set_controller_receiver(received.append)
        channel.send_to_controller("lost")
        sim.run()
        assert received == []

    def test_ordering_preserved(self):
        sim = Simulator()
        channel = ControllerChannel(sim, latency=0.1)
        channel.connect()
        received = []
        channel.set_switch_receiver(received.append)
        for index in range(5):
            channel.send_to_switch(index)
        sim.run()
        assert received == [0, 1, 2, 3, 4]
