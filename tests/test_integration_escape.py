"""End-to-end tests: the five demo steps of the paper, plus failure
paths, teardown and multi-chain coexistence."""

import pytest

from repro.core import ESCAPE, MappingError, OrchestratorError
from repro.core.nffg import ServiceGraph
from repro.core.sgfile import load_service_graph, load_topology
from repro.openflow import Match
from repro.packet import Ethernet, IPv4

TOPOLOGY = {
    "nodes": [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
        {"name": "nc1", "role": "vnf_container", "cpu": 4, "mem": 2048},
        {"name": "nc2", "role": "vnf_container", "cpu": 4, "mem": 2048},
    ],
    "links": [
        {"from": "h1", "to": "s1", "bandwidth": 100e6, "delay": 0.001},
        {"from": "s1", "to": "s2", "bandwidth": 100e6, "delay": 0.002},
        {"from": "h2", "to": "s2", "bandwidth": 100e6, "delay": 0.001},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc1", "to": "s1", "delay": 0.0005},
        {"from": "nc2", "to": "s2", "delay": 0.0005},
        {"from": "nc2", "to": "s2", "delay": 0.0005},
    ],
}

FIREWALL_SG = {
    "name": "fw-chain",
    "saps": ["h1", "h2"],
    "vnfs": [{"name": "fw", "type": "firewall",
              "params": {"rules": "allow icmp, drop all"}}],
    "chain": ["h1", "fw", "h2"],
    "requirements": [{"from": "h1", "to": "h2", "max_delay": 0.05}],
}


@pytest.fixture
def escape():
    framework = ESCAPE.from_topology(load_topology(TOPOLOGY))
    framework.start()
    return framework


class TestStep1Infrastructure:
    def test_all_layers_wired(self, escape):
        # infrastructure
        assert len(escape.net.switches()) == 2
        assert len(escape.net.vnf_containers()) == 2
        # controller platform saw every switch
        assert len(escape.nexus.connections) == 2
        # management plane: one NETCONF session per container
        assert set(escape.netconf_clients) == {"nc1", "nc2"}
        for client in escape.netconf_clients.values():
            assert client.connected
        # service layer + mappers present
        assert set(escape.mappers) >= {"greedy", "shortest-path",
                                       "backtracking",
                                       "congestion-aware"}

    def test_discovery_found_the_spine(self, escape):
        escape.run(2.0)
        assert len(escape.discovery.links()) == 1

    def test_plain_connectivity_before_chains(self, escape):
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        result = h1.ping(h2.ip, count=2, interval=0.2)
        escape.run(2.0)
        assert result.received == 2


class TestStep2And3DeployChain:
    def test_deploy_reports_placement(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        assert chain.active
        assert chain.mapping.vnf_placement["fw"] in ("nc1", "nc2")
        assert len(chain.path_ids) >= 3  # 2 segments + return path

    def test_vnf_started_in_container(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        container = escape.net.get(chain.mapping.vnf_placement["fw"])
        assert len(container.vnfs) == 1
        process = next(iter(container.vnfs.values()))
        assert process.status == "UP"

    def test_steering_entries_installed(self, escape):
        escape.deploy_service(FIREWALL_SG)
        escape.run(0.1)
        total_flows = sum(len(s.datapath.table)
                          for s in escape.net.switches())
        assert total_flows >= 3

    def test_resources_reserved(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        placed = chain.mapping.vnf_placement["fw"]
        snapshot = escape.orchestrator.view.snapshot()[placed]
        assert snapshot["cpu_used"] == pytest.approx(0.5)

    def test_mapper_selectable_by_name(self, escape):
        chain = escape.deploy_service(FIREWALL_SG, mapper="backtracking")
        assert chain.mapper.name == "backtracking"

    def test_unknown_mapper_rejected(self, escape):
        with pytest.raises(KeyError):
            escape.deploy_service(FIREWALL_SG, mapper="oracle")

    def test_duplicate_service_rejected(self, escape):
        escape.deploy_service(FIREWALL_SG)
        with pytest.raises(OrchestratorError):
            escape.deploy_service(FIREWALL_SG)

    def test_deploy_before_start_rejected(self):
        framework = ESCAPE.from_topology(load_topology(TOPOLOGY))
        with pytest.raises(RuntimeError):
            framework.deploy_service(FIREWALL_SG)

    def test_infeasible_request_rolls_back(self, escape):
        impossible = dict(FIREWALL_SG)
        impossible = load_service_graph(impossible)
        impossible.vnfs["fw"].cpu = 100.0
        with pytest.raises(MappingError):
            escape.deploy_service(impossible)
        # nothing left behind
        for container in escape.net.vnf_containers():
            assert container.vnfs == {}
        assert escape.steering.paths == {}


class TestStep4LiveTraffic:
    def test_icmp_passes_through_chain(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        result = h1.ping(h2.ip, count=5, interval=0.2)
        escape.run(3.0)
        assert result.received == 5
        assert int(chain.read_handler("fw", "fw.passed")) >= 5

    def test_udp_blocked_by_firewall(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        h1.send_udp(h2.ip, 9999, b"should-be-dropped")
        escape.run(0.5)
        assert h2.udp_rx_count == 0
        assert int(chain.read_handler("fw", "fw.dropped")) >= 1

    def test_traffic_actually_crosses_the_vnf(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        h1.ping(h2.ip, count=3, interval=0.1)
        escape.run(2.0)
        assert int(chain.read_handler("fw", "cnt_in.count")) >= 3

    def test_chain_rtt_includes_detour(self, escape):
        """The chained path detours via the container, so RTT must
        exceed the direct-path RTT."""
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        baseline = h1.ping(h2.ip, count=3, interval=0.1)
        escape.run(2.0)
        escape.deploy_service(FIREWALL_SG)
        chained = h1.ping(h2.ip, count=3, interval=0.1)
        escape.run(2.0)
        assert chained.received == 3
        # steered forward path adds at least the container links
        assert chained.avg_rtt > 0.0

    def test_sla_verification(self, escape):
        escape.deploy_service(FIREWALL_SG)
        reports = escape.service_layer.verify_sla("fw-chain", probes=3)
        assert len(reports) == 1
        assert reports[0].satisfied
        assert reports[0].measured_delay < 0.05


class TestStep5Monitoring:
    def test_monitor_collects_series(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        monitor = escape.monitor(chain, interval=0.2)
        monitor.start()
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        h1.ping(h2.ip, count=5, interval=0.1)
        escape.run(2.0)
        monitor.stop()
        latest = monitor.latest("fw", "cnt_in.count")
        assert latest is not None
        assert int(latest.value) >= 5
        series = monitor.series[("fw", "cnt_in.count")]
        assert len(series) >= 5  # several polls landed

    def test_monitor_rate_computation(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        monitor = escape.monitor(chain, interval=0.25)
        monitor.start()
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        h1.ping(h2.ip, count=10, interval=0.1)
        escape.run(1.2)
        rate = monitor.rate_of("fw", "cnt_in.count")
        monitor.stop()
        assert rate is not None
        assert rate > 0

    def test_dashboard_renders(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        monitor = escape.monitor(chain, interval=0.2)
        monitor.start()
        escape.run(1.0)
        monitor.stop()
        text = monitor.dashboard()
        assert "fw" in text
        assert "cnt_in.count" in text

    def test_monitor_stops_with_chain(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        monitor = escape.monitor(chain, interval=0.2)
        monitor.start()
        escape.run(0.5)
        chain.undeploy()
        escape.run(1.0)
        assert not monitor.running


class TestTeardown:
    def test_undeploy_stops_vnfs_and_flows(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        escape.run(0.2)
        chain.undeploy()
        escape.run(0.2)
        for container in escape.net.vnf_containers():
            assert container.vnfs == {}
        steering_flows = [entry
                          for switch in escape.net.switches()
                          for entry in switch.datapath.table.entries
                          if entry.priority >= 0x6000]
        assert steering_flows == []

    def test_undeploy_releases_resources(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        placed = chain.mapping.vnf_placement["fw"]
        chain.undeploy()
        snapshot = escape.orchestrator.view.snapshot()[placed]
        assert snapshot["cpu_used"] == pytest.approx(0.0)

    def test_undeploy_is_idempotent(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        chain.undeploy()
        chain.undeploy()

    def test_traffic_unfiltered_after_teardown(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        h1.send_udp(h2.ip, 9999, b"blocked")
        escape.run(0.5)
        assert h2.udp_rx_count == 0
        chain.undeploy()
        escape.run(0.2)
        h1.send_udp(h2.ip, 9999, b"open")
        escape.run(1.0)
        assert h2.udp_rx_count == 1

    def test_redeploy_after_teardown(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        escape.terminate_service("fw-chain")
        chain2 = escape.deploy_service(FIREWALL_SG)
        assert chain2.active


class TestMultiChain:
    def test_two_chains_coexist(self, escape):
        escape.deploy_service(FIREWALL_SG)
        second = {
            "name": "mon-chain",
            "saps": ["h2", "h1"],
            "vnfs": [{"name": "mon", "type": "monitor"}],
            "chain": ["h2", "mon", "h1"],
        }
        chain2 = escape.deploy_service(second, return_path="none")
        assert len(escape.service_layer.services) == 2
        assert chain2.mapping.vnf_placement["mon"] in ("nc1", "nc2")

    def test_multi_vnf_chain_same_container_hairpin(self, escape):
        sg = {
            "name": "double",
            "saps": ["h1", "h2"],
            "vnfs": [
                {"name": "a", "type": "forwarder"},
                {"name": "b", "type": "forwarder"},
            ],
            "chain": ["h1", "a", "b", "h2"],
        }
        chain = escape.deploy_service(sg, mapper="backtracking")
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        result = h1.ping(h2.ip, count=3, interval=0.2)
        escape.run(3.0)
        assert result.received == 3
        assert int(chain.read_handler("a", "cnt_in.count")) >= 3
        assert int(chain.read_handler("b", "cnt_in.count")) >= 3


class TestCustomMapperPlugin:
    def test_user_supplied_mapper(self, escape):
        from repro.core.mapping import GreedyMapper

        class LastContainerMapper(GreedyMapper):
            """Toy strategy: always prefer the last container."""
            name = "last-container"

            def map(self, sg, view):
                # reverse container iteration order by monkeypatching
                # the trial copy's container list
                original = view.containers
                mapping = super().map(sg, view)
                return mapping

        escape.add_mapper("last", LastContainerMapper(escape.catalog))
        chain = escape.deploy_service(FIREWALL_SG, mapper="last")
        assert chain.active


class TestExplicitMatch:
    def test_custom_flowspec(self, escape):
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        match = Match(dl_type=Ethernet.IP_TYPE, nw_src=h1.ip,
                      nw_dst=h2.ip, nw_proto=IPv4.UDP_PROTOCOL,
                      tp_dst=5001)
        sg = dict(FIREWALL_SG)
        sg["name"] = "udp-only"
        chain = escape.deploy_service(sg, match=match)
        # UDP:5001 goes through the chain (and gets dropped by rules);
        # other traffic bypasses it.  (fw.dropped also counts the LLDP
        # probes discovery floods into container ports — like the real
        # POX discovery would — so assert on delivery, not exact drops.)
        h1.send_udp(h2.ip, 5001, b"chained")
        h1.send_udp(h2.ip, 9999, b"bypass")
        escape.run(1.0)
        assert h2.udp_rx_count == 1
        assert int(chain.read_handler("fw", "fw.dropped")) >= 1


class TestTelemetry:
    """A full demo deploy must leave behind a complete, well-nested
    trace and a metrics snapshot covering all three UNIFY layers."""

    def test_deploy_produces_nested_trace(self, escape):
        escape.deploy_service(FIREWALL_SG)
        trace = escape.last_trace()
        assert trace is not None
        assert trace.name == "service.deploy"
        assert trace.status == "ok"
        assert trace.tags["service"] == "fw-chain"
        # service.deploy -> orchestrator.deploy -> start_vnf ->
        # netconf.rpc is already four levels; steering goes one deeper
        assert trace.depth() >= 4
        for name in ("service.parse_sg", "orchestrator.deploy",
                     "orchestrator.map", "orchestrator.start_vnf",
                     "netconf.rpc", "orchestrator.install_segment",
                     "steering.install_path", "openflow.flow_mod"):
            assert trace.find(name), "missing span %s" % name

    def test_trace_spans_are_well_nested(self, escape):
        escape.deploy_service(FIREWALL_SG)
        trace = escape.last_trace()
        for span in trace.iter_spans():
            assert span.status == "ok"
            assert span.duration is not None and span.duration >= 0
            for child in span.children:
                assert child.start >= span.start
                assert child.end <= span.end
        # the startVNF RPC precedes its connectVNF RPCs in sim time
        rpc_ops = [span.tags["op"]
                   for span in trace.find("netconf.rpc")]
        assert rpc_ops[0] == "startVNF"
        assert "connectVNF" in rpc_ops

    def test_last_trace_survives_traffic(self, escape):
        """Sampled per-packet spans must not shadow the deploy trace."""
        escape.deploy_service(FIREWALL_SG)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        h1.ping(h2.ip, count=5, interval=0.05)
        escape.run(2.0)
        trace = escape.last_trace()
        assert trace is not None and trace.name == "service.deploy"

    def test_snapshot_covers_all_three_layers(self, escape):
        escape.deploy_service(FIREWALL_SG)
        h1, h2 = escape.net.get("h1"), escape.net.get("h2")
        h1.ping(h2.ip, count=3, interval=0.05)
        escape.run(2.0)
        metrics = escape.metrics_snapshot()
        # service layer
        assert metrics["service.layer.deploys"]["value"] == 1
        # orchestration layer
        assert metrics["core.orchestrator.deploys"]["value"] == 1
        assert metrics["core.mapping.map_calls"]["value"] == 1
        assert metrics["netconf.client.rpcs"]["value"] >= 3
        assert metrics["pox.steering.flow_mods"]["value"] >= 4
        # infrastructure layer (collector-fed gauges)
        assert metrics["netconf.agent.rpcs"]["value"] >= 3
        assert metrics["openflow.switch.flow_mods"]["value"] >= 4
        assert metrics["netem.link.delivered"]["value"] > 0
        assert metrics["click.element.pushes"]["value"] > 0
        assert metrics["core.orchestrator.deploy_time"]["count"] == 1

    def test_export_formats(self, escape, tmp_path):
        import json as json_module
        escape.deploy_service(FIREWALL_SG)
        data = json_module.loads(escape.export_metrics("json"))
        assert data["metrics"]["service.layer.deploys"]["value"] == 1
        assert data["traces"]
        prom = escape.export_metrics("prom")
        assert "# TYPE service_layer_deploys counter" in prom
        assert "# TYPE netconf_client_rpc_latency histogram" in prom
        assert 'netconf_client_rpc_latency_bucket{le="+Inf"}' in prom
        path = tmp_path / "snap.json"
        escape.export_metrics("json", str(path))
        assert json_module.loads(path.read_text())["metrics"]
        with pytest.raises(ValueError):
            escape.export_metrics("xml")

    def test_cli_metrics_and_trace_commands(self, escape):
        escape.deploy_service(FIREWALL_SG)
        cli = escape.cli()
        assert "service_layer_deploys 1" in cli.run_command("metrics prom")
        json_out = cli.run_command("metrics")
        assert '"service.layer.deploys"' in json_out
        trace_out = cli.run_command("trace")
        assert trace_out.startswith("service.deploy")
        assert "netconf.rpc" in trace_out

    def test_monitor_counters_live_in_registry(self, escape):
        chain = escape.deploy_service(FIREWALL_SG)
        monitor = escape.monitor(chain, interval=0.5)
        monitor.start()
        escape.run(1.2)
        monitor.stop()
        assert monitor.polls >= 2
        registry = escape.telemetry.metrics
        assert registry.get("core.monitor.polls").value >= 2
        assert registry.get("pox.stats.poll_rounds").value >= 1
