"""Tests for the VNF-container NETCONF agent (the OpenYuma analog)."""

import pytest

from repro.netconf import NetconfClient, RpcError, TransportPair, VNFAgent
from repro.netconf.agent import CAP_VNF
from repro.netconf.messages import qn
from repro.netconf.vnf_yang import VNF_NS
from repro.netem import Network

COUNT_VNF = ("src :: RatedSource(RATE 100, LIMIT 1000)"
             " -> cnt :: Counter -> Discard;")
WIRE_VNF = "FromDevice(in0) -> cnt :: Counter -> ToDevice(out0);"


@pytest.fixture
def managed():
    net = Network()
    container = net.add_vnf_container("nc1", cpu=2.0, mem=1024.0)
    container.add_interface("00:00:00:00:02:01", name="nc1-eth0")
    container.add_interface("00:00:00:00:02:02", name="nc1-eth1")
    pair = TransportPair(net.sim, latency=0.001)
    agent = VNFAgent(container, pair.server)
    client = NetconfClient(pair.client)
    client.wait_connected()
    return net, container, agent, client


def start(client, sim, vnf_id="v1", config=COUNT_VNF, devices="",
          cpu="0.5", mem="128"):
    return client.rpc("startVNF", VNF_NS, {
        "id": vnf_id, "click-config": config, "devices": devices,
        "cpu": cpu, "mem": mem}).result(sim)


class TestAgentRpcs:
    def test_capabilities_advertised(self, managed):
        _net, _container, _agent, client = managed
        assert CAP_VNF in client.server_capabilities
        assert VNF_NS in client.server_capabilities

    def test_start_vnf(self, managed):
        net, container, _agent, client = managed
        reply = start(client, net.sim)
        status = reply.find(qn("status", VNF_NS))
        assert status.text == "UP"
        assert "v1" in container.vnfs

    def test_start_validates_input(self, managed):
        net, _container, _agent, client = managed
        with pytest.raises(RpcError) as exc:
            client.rpc("startVNF", VNF_NS, {"id": "x"}).result(net.sim)
        assert exc.value.tag == "invalid-value"

    def test_start_duplicate_id_fails(self, managed):
        net, _container, _agent, client = managed
        start(client, net.sim)
        with pytest.raises(RpcError):
            start(client, net.sim)

    def test_resource_exhaustion_reported(self, managed):
        net, _container, _agent, client = managed
        with pytest.raises(RpcError) as exc:
            start(client, net.sim, cpu="99")
        assert "reserve" in exc.value.message

    def test_bad_click_config_reported(self, managed):
        net, _container, _agent, client = managed
        with pytest.raises(RpcError):
            start(client, net.sim, config="x :: NoSuchElement;")

    def test_stop_vnf(self, managed):
        net, container, _agent, client = managed
        start(client, net.sim)
        client.rpc("stopVNF", VNF_NS, {"id": "v1"}).result(net.sim)
        assert container.vnfs == {}

    def test_stop_unknown_fails(self, managed):
        net, _container, _agent, client = managed
        with pytest.raises(RpcError):
            client.rpc("stopVNF", VNF_NS, {"id": "ghost"}).result(net.sim)

    def test_connect_disconnect(self, managed):
        net, container, _agent, client = managed
        start(client, net.sim, config=WIRE_VNF, devices="in0,out0")
        client.rpc("connectVNF", VNF_NS, {
            "id": "v1", "device": "in0",
            "interface": "nc1-eth0"}).result(net.sim)
        assert container.free_interfaces() == ["nc1-eth1"]
        client.rpc("disconnectVNF", VNF_NS, {
            "id": "v1", "device": "in0"}).result(net.sim)
        assert len(container.free_interfaces()) == 2

    def test_get_vnf_info_handler_read(self, managed):
        net, _container, _agent, client = managed
        start(client, net.sim)
        net.run(1.0)
        reply = client.rpc("getVNFInfo", VNF_NS, {
            "id": "v1", "handler": "cnt.count"}).result(net.sim)
        value = reply.find(qn("value", VNF_NS))
        assert int(value.text) > 50

    def test_get_vnf_info_bad_handler(self, managed):
        net, _container, _agent, client = managed
        start(client, net.sim)
        with pytest.raises(RpcError):
            client.rpc("getVNFInfo", VNF_NS, {
                "id": "v1", "handler": "cnt.bogus"}).result(net.sim)

    def test_list_handlers(self, managed):
        net, _container, _agent, client = managed
        start(client, net.sim)
        reply = client.rpc("listHandlers", VNF_NS,
                           {"id": "v1"}).result(net.sim)
        listing = reply.find(qn("handlers", VNF_NS)).text
        assert "cnt.count" in listing
        assert "src.count" in listing

    def test_write_handler(self, managed):
        net, _container, _agent, client = managed
        start(client, net.sim)
        net.run(0.5)
        client.rpc("writeVNFHandler", VNF_NS, {
            "id": "v1", "handler": "cnt.reset",
            "value": ""}).result(net.sim)
        reply = client.rpc("getVNFInfo", VNF_NS, {
            "id": "v1", "handler": "cnt.count"}).result(net.sim)
        assert reply.find(qn("value", VNF_NS)).text == "0"


class TestOperationalState:
    def test_get_reports_vnfs(self, managed):
        net, _container, _agent, client = managed
        start(client, net.sim)
        net.run(0.5)
        reply = client.get().result(net.sim)
        data = reply.find(qn("data"))
        vnfs = data.find(qn("vnfs", VNF_NS))
        entries = vnfs.findall(qn("vnf", VNF_NS))
        assert len(entries) == 1
        assert entries[0].find(qn("id", VNF_NS)).text == "v1"
        assert entries[0].find(qn("status", VNF_NS)).text == "UP"
        uptime = float(entries[0].find(qn("uptime", VNF_NS)).text)
        assert uptime > 0.4

    def test_get_reports_capacity(self, managed):
        net, _container, _agent, client = managed
        start(client, net.sim, cpu="1.5", mem="512")
        reply = client.get().result(net.sim)
        capacity = reply.find(qn("data")).find(qn("capacity", VNF_NS))
        used = float(capacity.find(qn("cpu-used", VNF_NS)).text)
        assert used == pytest.approx(1.5)

    def test_state_validates_against_yang(self, managed):
        net, _container, agent, client = managed
        start(client, net.sim, config=WIRE_VNF, devices="in0,out0")
        client.rpc("connectVNF", VNF_NS, {
            "id": "v1", "device": "in0",
            "interface": "nc1-eth0"}).result(net.sim)
        reply = client.get().result(net.sim)
        data = reply.find(qn("data"))
        for child in data:
            agent.module.validate_data(child)

    def test_state_tracks_stop(self, managed):
        net, _container, _agent, client = managed
        start(client, net.sim)
        client.rpc("stopVNF", VNF_NS, {"id": "v1"}).result(net.sim)
        reply = client.get().result(net.sim)
        vnfs = reply.find(qn("data")).find(qn("vnfs", VNF_NS))
        assert len(vnfs.findall(qn("vnf", VNF_NS))) == 0
