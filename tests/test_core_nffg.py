"""Tests for service graphs, resource views, catalog and SG files."""

import json

import pytest

from repro.core import (CatalogEntry, ResourceView, ServiceGraph,
                        VNFCatalog, default_catalog)
from repro.core.catalog import CatalogError
from repro.core.sgfile import (load_service_graph, load_topology,
                               save_service_graph, save_topology)
from repro.netem.topo import Topo


class TestServiceGraph:
    def test_chain_construction(self):
        sg = ServiceGraph("chain")
        sg.add_sap("h1")
        sg.add_sap("h2")
        sg.add_vnf("fw", "firewall")
        links = sg.add_chain(["h1", "fw", "h2"])
        assert len(links) == 2
        assert sg.successors("h1") == ["fw"]
        assert sg.successors("fw") == ["h2"]

    def test_duplicate_node_rejected(self):
        sg = ServiceGraph()
        sg.add_sap("x")
        with pytest.raises(ValueError):
            sg.add_vnf("x", "firewall")

    def test_link_to_unknown_rejected(self):
        sg = ServiceGraph()
        sg.add_sap("a")
        with pytest.raises(ValueError):
            sg.add_link("a", "ghost")

    def test_chain_from_walks_linear(self):
        sg = ServiceGraph()
        sg.add_sap("a")
        sg.add_sap("b")
        sg.add_vnf("v1", "forwarder")
        sg.add_vnf("v2", "forwarder")
        sg.add_chain(["a", "v1", "v2", "b"])
        assert sg.chain_from("a") == ["a", "v1", "v2", "b"]

    def test_chain_from_rejects_branch(self):
        sg = ServiceGraph()
        sg.add_sap("a")
        sg.add_vnf("lb", "load_balancer")
        sg.add_vnf("x", "forwarder")
        sg.add_vnf("y", "forwarder")
        sg.add_link("a", "lb")
        sg.add_link("lb", "x")
        sg.add_link("lb", "y")
        with pytest.raises(ValueError):
            sg.chain_from("a")

    def test_chain_from_detects_cycle(self):
        sg = ServiceGraph()
        sg.add_sap("a")
        sg.add_vnf("v1", "forwarder")
        sg.add_vnf("v2", "forwarder")
        sg.add_link("a", "v1")
        sg.add_link("v1", "v2")
        sg.add_link("v2", "v1")
        with pytest.raises(ValueError):
            sg.chain_from("a")

    def test_requirement_endpoints_must_be_saps(self):
        sg = ServiceGraph()
        sg.add_sap("a")
        sg.add_vnf("v", "forwarder")
        sg.add_requirement("a", "v", max_delay=0.1)
        with pytest.raises(ValueError):
            sg.validate()


class TestResourceView:
    def _view(self):
        view = ResourceView()
        view.add_sap("h1")
        view.add_sap("h2")
        view.add_switch("s1", dpid=1)
        view.add_switch("s2", dpid=2)
        view.add_container("nc1", cpu=2.0, mem=1024.0)
        view.add_link("h1", "s1", delay=0.001)
        view.add_link("s1", "s2", delay=0.002, bandwidth=100e6)
        view.add_link("h2", "s2", delay=0.001)
        view.add_link("nc1", "s1", delay=0.0005)
        return view

    def test_kind_queries(self):
        view = self._view()
        assert view.saps() == ["h1", "h2"]
        assert set(view.switches()) == {"s1", "s2"}
        assert view.containers() == ["nc1"]
        assert view.kind("nc1") == ResourceView.CONTAINER

    def test_container_reservation(self):
        view = self._view()
        assert view.container_fits("nc1", 2.0, 1024.0)
        view.reserve_container("nc1", 1.5, 512.0)
        assert not view.container_fits("nc1", 1.0, 100.0)
        view.release_container("nc1", 1.5, 512.0)
        assert view.container_fits("nc1", 2.0, 1024.0)

    def test_over_reservation_raises(self):
        view = self._view()
        with pytest.raises(ValueError):
            view.reserve_container("nc1", 3.0, 10.0)

    def test_shortest_path_by_delay(self):
        view = self._view()
        path = view.shortest_path("h1", "h2")
        assert path == ["h1", "s1", "s2", "h2"]
        assert view.path_delay(path) == pytest.approx(0.004)

    def test_shortest_path_respects_bandwidth(self):
        view = self._view()
        view.reserve_path_bandwidth(["s1", "s2"], 90e6)
        assert view.shortest_path("h1", "h2", min_bandwidth=50e6) is None
        assert view.shortest_path("h1", "h2", min_bandwidth=5e6) \
            is not None

    def test_bandwidth_reservation_and_release(self):
        view = self._view()
        view.reserve_path_bandwidth(["h1", "s1", "s2"], 60e6)
        assert view.link_free_bandwidth("s1", "s2") == pytest.approx(40e6)
        view.release_path_bandwidth(["h1", "s1", "s2"], 60e6)
        assert view.link_free_bandwidth("s1", "s2") == pytest.approx(100e6)

    def test_over_reserving_bandwidth_raises(self):
        view = self._view()
        with pytest.raises(ValueError):
            view.reserve_path_bandwidth(["s1", "s2"], 200e6)

    def test_unlimited_links_have_infinite_bandwidth(self):
        view = self._view()
        assert view.link_free_bandwidth("h1", "s1") == float("inf")

    def test_disconnected_returns_none(self):
        view = self._view()
        view.add_sap("island")
        assert view.shortest_path("h1", "island") is None

    def test_copy_is_independent(self):
        view = self._view()
        clone = view.copy()
        clone.reserve_container("nc1", 2.0, 1024.0)
        assert view.container_fits("nc1", 2.0, 1024.0)


class TestCatalog:
    def test_default_catalog_names(self):
        catalog = default_catalog()
        for name in ("firewall", "nat", "dpi", "rate_limiter",
                     "forwarder", "monitor", "delay", "load_balancer"):
            assert name in catalog

    def test_every_entry_renders_and_builds(self):
        from repro.click import Router
        from repro.click.elements.device import Device
        catalog = default_catalog()
        overrides = {"nat": {"nat_ip": "192.0.2.1"}}
        for name in catalog.names():
            entry = catalog.get(name)
            config = entry.render(overrides.get(name))
            router = Router.from_config(config)
            router.device_map = {dev: Device(dev)
                                 for dev in entry.devices}
            router.start()
            for handler in entry.monitor_handlers:
                router.read_handler(handler)
            router.stop()

    def test_missing_parameter_reported(self):
        catalog = default_catalog()
        with pytest.raises(CatalogError) as exc:
            catalog.get("nat").render()
        assert "nat_ip" in str(exc.value)

    def test_parameter_discovery(self):
        entry = default_catalog().get("firewall")
        assert entry.parameters() == ["rules"]

    def test_defaults_applied(self):
        entry = default_catalog().get("rate_limiter")
        assert "Shaper(1000)" in entry.render()
        assert "Shaper(50)" in entry.render({"rate": "50"})

    def test_unknown_type_lists_alternatives(self):
        with pytest.raises(CatalogError) as exc:
            default_catalog().get("quantum_firewall")
        assert "firewall" in str(exc.value)

    def test_duplicate_registration_rejected(self):
        catalog = VNFCatalog()
        catalog.register(CatalogEntry("x", "", "Idle;"))
        with pytest.raises(CatalogError):
            catalog.register(CatalogEntry("x", "", "Idle;"))


class TestSGFile:
    TOPO = {
        "nodes": [
            {"name": "h1", "role": "host", "ip": "10.0.0.1"},
            {"name": "s1", "role": "switch"},
            {"name": "nc1", "role": "vnf_container", "cpu": 2,
             "mem": 512},
        ],
        "links": [
            {"from": "h1", "to": "s1", "bandwidth": 10e6,
             "delay": 0.001},
            {"from": "nc1", "to": "s1"},
        ],
    }

    SG = {
        "name": "websvc",
        "saps": ["h1", "h2"],
        "vnfs": [{"name": "fw", "type": "firewall",
                  "params": {"rules": "allow tcp dst port 80"},
                  "cpu": 0.25}],
        "chain": ["h1", "fw", "h2"],
        "requirements": [{"from": "h1", "to": "h2",
                          "max_delay": 0.05}],
    }

    def test_load_topology(self):
        topo = load_topology(self.TOPO)
        assert topo.hosts() == ["h1"]
        assert topo.vnf_containers() == ["nc1"]
        assert len(topo.links) == 2

    def test_load_topology_from_string(self):
        topo = load_topology(json.dumps(self.TOPO))
        assert isinstance(topo, Topo)

    def test_topology_roundtrip(self):
        topo = load_topology(self.TOPO)
        again = load_topology(save_topology(topo))
        assert again.nodes.keys() == topo.nodes.keys()
        assert len(again.links) == len(topo.links)

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError):
            load_topology({"nodes": [{"name": "x", "role": "router"}]})

    def test_load_service_graph(self):
        sg = load_service_graph(self.SG)
        assert sg.name == "websvc"
        assert list(sg.vnfs) == ["fw"]
        assert sg.vnfs["fw"].cpu == 0.25
        assert len(sg.links) == 2
        assert sg.requirements[0].max_delay == 0.05

    def test_service_graph_roundtrip(self):
        sg = load_service_graph(self.SG)
        again = load_service_graph(save_service_graph(sg))
        assert list(again.saps) == list(sg.saps)
        assert list(again.vnfs) == list(sg.vnfs)
        assert len(again.links) == len(sg.links)
        assert again.requirements[0].max_delay == 0.05

    def test_invalid_sg_rejected_at_load(self):
        broken = dict(self.SG)
        broken["chain"] = ["h1", "ghost", "h2"]
        with pytest.raises(ValueError):
            load_service_graph(broken)
