"""EVT — event-core efficiency of the notifier-driven pull path.

PR 7's dispatch accounting showed the fixed-interval ``_PullDriver``
poll dominating every profile: a parked pull driver still burned one
event per interval whether or not a packet existed.  With Click-style
notifiers the drivers sleep on empty upstreams and are woken by the
0->1 push transition, so this suite pins the property that made the
rewrite worth doing:

* an **idle** network dispatches (almost) zero events per simulated
  second — exactly zero for a bare Click pipeline, and only the
  telemetry series sampler for a full started ESCAPE substrate;
* re-arming a :class:`Wakeup` (the hot operation of the rated pull
  path) stays O(1) amortized instead of heap cancel/push churn.
"""

import pytest

from benchmarks.helpers import chain_sg, started_escape
from repro.click import Router
from repro.sim import Simulator, Wakeup

IDLE_SIM_SECONDS = 100.0


def test_idle_click_pipeline_dispatches_zero_events(benchmark):
    """An armed pull pipeline with nothing queued parks on its
    notifier.  Under the old poll storm this run cost one event per
    driver interval (~100k dispatches for 100 sim-seconds at the 1ms
    default); event-driven it must cost exactly zero."""
    sim = Simulator()
    router = Router.from_config(
        "src :: TimedSource(INTERVAL 0.001, LIMIT 100)"
        " -> q :: Queue(64) -> Unqueue(BURST 8)"
        " -> cnt :: Counter -> Discard;", sim=sim)
    router.start()
    sim.run(until=sim.now + 1.0)  # drain the priming traffic
    assert int(router.read_handler("cnt.count")) == 100
    acct = sim.accounting
    acct.reset()
    acct.enable()
    rounds = 3

    def idle():
        sim.run(until=sim.now + IDLE_SIM_SECONDS)
    benchmark.pedantic(idle, rounds=rounds, iterations=1)
    acct.disable()
    rate = acct.dispatched / (rounds * IDLE_SIM_SECONDS)
    benchmark.extra_info["events_per_sim_second"] = rate
    assert acct.dispatched == 0


def test_idle_escape_network_event_rate(benchmark):
    """A started substrate with a deployed chain but no offered load:
    the container VNFs' pull drivers (Unqueue/ToDevice inside every
    Click pipeline) must all be parked on their notifiers.  What
    remains is the control plane's own deterministic heartbeats (LLDP
    discovery, stats polling, flow-expiry sweeps, the series sampler)
    — tens of events per sim-second on this substrate, where the poll
    storm alone used to add 1000/s *per driver*."""
    escape = started_escape(containers=2, container_ports=4)
    escape.deploy_service(chain_sg(1, name="idle-chain"))
    escape.run(1.0)  # let deployment-time control traffic settle
    acct = escape.accounting
    acct.reset()
    acct.enable()

    def idle():
        escape.run(IDLE_SIM_SECONDS)
    benchmark.pedantic(idle, rounds=1, iterations=1)
    acct.disable()
    rate = acct.dispatched / IDLE_SIM_SECONDS
    benchmark.extra_info["events_per_sim_second"] = rate
    benchmark.extra_info["dispatch_kinds"] = sorted(acct.kinds)
    assert not any("_PullDriver" in kind for kind in acct.kinds)
    assert acct.polls == 0
    assert rate < 100.0


def test_wakeup_rearm_cost(benchmark):
    """Pushing an armed Wakeup's deadline later must be a lazy re-key
    (no cancel/push churn), so the rated pull path can retarget its
    credit instant every packet without growing the heap."""
    sim = Simulator()
    wakeup = Wakeup(sim, lambda: None)
    wakeup.arm(1.0)
    deadline = [sim.now + 1.0]

    def rearm():
        deadline[0] += 1e-6
        wakeup.arm_at(deadline[0])
    benchmark(rearm)
    assert sim.pending == 1


def test_busy_pipeline_events_track_packets(benchmark):
    """Under load the event count must scale with packets moved, not
    with wall duration: BURST-sized packet trains drain in same-time
    continuation shots."""
    packets = 5000
    sim = Simulator()
    router = Router.from_config(
        "src :: RatedSource(RATE 10000, LIMIT %d)"
        " -> q :: Queue(256) -> Unqueue(BURST 32)"
        " -> cnt :: Counter -> Discard;" % packets, sim=sim)
    router.start()
    acct = sim.accounting
    acct.enable()

    def drain():
        sim.run(until=sim.now + 2.0)
    benchmark.pedantic(drain, rounds=1, iterations=1)
    acct.disable()
    assert int(router.read_handler("cnt.count")) == packets
    benchmark.extra_info["events_per_packet"] = (
        acct.dispatched / packets)
    # one source credit shot + one wake-drain per packet (the source
    # meters packets out one at a time, so trains never build up); the
    # point is the count tracks *packets*, not duration/interval, and
    # no blind interval polls fired at all
    assert acct.dispatched <= 2 * packets + 2
    assert acct.polls == 0
