"""STEER1 — traffic-steering cost: flow-mods per chain and install
latency vs path length, exact vs VLAN granularity (the design ablation
DESIGN.md calls out)."""

import pytest

from repro.netem import LinearTopo, Network
from repro.openflow import Match
from repro.pox import Core, OpenFlowNexus, PathHop, TrafficSteering


def steering_rig(switches, mode):
    net = Network.build(LinearTopo(k=switches, n=1))
    nexus = OpenFlowNexus(Core(net.sim))
    steering = TrafficSteering(nexus, mode=mode)
    net.add_controller(nexus)
    net.start()
    net.run(0.1)
    hops = [PathHop(dpid, 1, 2) for dpid in range(1, switches + 1)]
    return net, steering, hops


@pytest.mark.parametrize("mode", ["exact", "vlan"])
@pytest.mark.parametrize("switches", [2, 8, 32])
def test_path_install_latency(benchmark, mode, switches):
    net, steering, hops = steering_rig(switches, mode)
    counter = {"n": 0}

    def install_remove():
        counter["n"] += 1
        path_id = "p%d" % counter["n"]
        steering.install_path(path_id, hops,
                              Match(nw_src="10.0.0.%d"
                                    % (counter["n"] % 250 + 1)))
        net.run(0.05)  # flow-mods land on the switches
        steering.remove_path(path_id)
        net.run(0.05)
    benchmark.pedantic(install_remove, rounds=5, iterations=1)


def test_flow_mod_count_table(benchmark):
    """Entries per chain vs hops, exact vs vlan — prints the STEER1
    table and asserts the linear shape."""
    rows = []

    def measure():
        for switches in (2, 4, 8, 16, 32):
            counts = {}
            for mode in ("exact", "vlan"):
                _net, steering, hops = steering_rig(switches, mode)
                steering.install_path("p", hops,
                                      Match(nw_src="10.0.0.1"))
                counts[mode] = steering.flow_mod_count("p")
            rows.append((switches, counts["exact"], counts["vlan"]))
    benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nSTEER1: flow entries per installed chain path")
    print("%8s %10s %10s" % ("hops", "exact", "vlan"))
    for switches, exact, vlan in rows:
        print("%8d %10d %10d" % (switches, exact, vlan))
    # both modes are linear in hops; per-hop count identical here (one
    # entry per switch) but vlan entries in the core are *narrower*
    for switches, exact, vlan in rows:
        assert exact == switches
        assert vlan == switches


def test_vlan_core_entries_are_narrow(benchmark):
    """The ablation's actual payoff: VLAN-mode core entries match only
    (in_port, vlan) while exact-mode entries carry the full 5-tuple —
    i.e. per-chain state in the core is independent of the flowspec."""
    _net, steering, hops = steering_rig(4, "vlan")
    benchmark.pedantic(
        lambda: steering.install_path("p", hops,
                                      Match(nw_src="10.0.0.1",
                                            nw_dst="10.0.0.2",
                                            tp_dst=80)),
        rounds=1, iterations=1)
    core_mods = [flow_mod for _dpid, flow_mod
                 in steering.paths["p"].flow_mods[1:-1]]
    for flow_mod in core_mods:
        assert flow_mod.match.nw_src is None
        assert flow_mod.match.dl_vlan is not None


@pytest.mark.parametrize("chains", [1, 16, 64])
def test_many_chains_install_throughput(benchmark, chains):
    """Total time to install N disjoint chain paths (deploy burst)."""
    net, steering, hops = steering_rig(8, "exact")
    round_counter = {"n": 0}

    def install_burst():
        round_counter["n"] += 1
        base = round_counter["n"] * chains
        for index in range(chains):
            steering.install_path(
                "burst-%d" % (base + index), hops,
                Match(nw_src="10.%d.%d.1"
                      % ((base + index) // 250, (base + index) % 250)))
        net.run(0.1)
        for index in range(chains):
            steering.remove_path("burst-%d" % (base + index))
        net.run(0.1)
    benchmark.pedantic(install_burst, rounds=3, iterations=1)
