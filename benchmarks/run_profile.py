"""Profiled demo-chain workload -> BENCH_profile.json.

The perf-regression harness's workload driver: builds the standard
benchmark substrate, deploys a one-VNF chain, pushes a fixed UDP burst
through it with the profiler enabled, and emits a
:func:`repro.telemetry.regression.profile_snapshot` — per-region
timings normalized by a machine-speed calibration unit, plus
throughput numbers.

Usage::

    python benchmarks/run_profile.py --out BENCH_profile.json
    python benchmarks/run_profile.py --out current.json \
        --check BENCH_profile.json        # exit 1 on regression
    python benchmarks/run_profile.py --attribution attribution.json

``--check`` compares the fresh snapshot against a committed baseline
with :func:`compare_profiles` (guarded regions +15% score, throughput
-15%) — the CI perf gate.  ``udp_pps_wall`` is a *guarded* throughput
floor: the gate fails both when it drops more than 15% below the
baseline and when the current snapshot stops reporting it at all.

``--attribution`` additionally writes the unified attribution report
(profiler regions + per-event-kind dispatch accounting + throughput,
see :mod:`repro.telemetry.introspect`) — the artifact CI uploads and
``escape perf diff`` consumes.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

from benchmarks.helpers import chain_sg, demo_topology  # noqa: E402
from repro.core import ESCAPE  # noqa: E402
from repro.telemetry.introspect import (build_report,
                                        render_report)  # noqa: E402
from repro.telemetry.regression import (calibrate, compare_profiles,
                                        load_profile, profile_snapshot,
                                        render_comparison,
                                        write_profile)  # noqa: E402

PACKETS = 500
RATE_PPS = 1000
ROUNDS = 3


def _burst(escape):
    """One fixed UDP burst through the chain; returns (wall seconds,
    packets delivered)."""
    h1, h2 = escape.net.get("h1"), escape.net.get("h2")
    before = h2.udp_rx_count
    h1.start_udp_flow(h2.ip, 5001, rate_pps=RATE_PPS,
                      duration=PACKETS / RATE_PPS, payload_size=200)
    started = time.perf_counter()
    escape.run(PACKETS / RATE_PPS + 0.5)
    elapsed = time.perf_counter() - started
    delivered = h2.udp_rx_count - before
    if delivered != PACKETS:
        raise RuntimeError("workload lost packets: %d/%d delivered"
                           % (delivered, PACKETS))
    return elapsed, delivered


def run_workload(rounds=ROUNDS):
    """The standard profiled workload; returns (profiler, dispatch
    report, throughput, packets).

    OpenFlow wire serialization is on and the profiler is enabled
    across deploy/terminate cycles, so the snapshot covers the
    control-path regions (mapping, NETCONF encode/decode, steering,
    OF wire) as well as the per-packet dataplane ones.  Each round is
    profiled in isolation and every region keeps its *best* (lowest
    per-call) round — the min-of-N de-noising the timing guards in
    ``test_bench_observability.py`` also use, without which scheduler
    jitter on a busy machine dwarfs real 15% regressions.
    """
    escape = ESCAPE.from_topology(
        demo_topology(containers=2, container_ports=4), of_wire=True)
    escape.start()
    _burst(escape)  # warm-up, unprofiled (plain L2 forwarding)
    profiler = escape.profiler
    accounting = escape.accounting
    best_stats = {}
    best_wall = None
    best_dispatch = None
    packets = 0
    sequence = 0
    for _ in range(rounds):
        profiler.reset()
        profiler.enable()
        accounting.reset()
        accounting.enable()
        # control-path exercise: repeated deploy/terminate cycles
        for _ in range(2):
            name = "ctl-%d" % sequence
            sequence += 1
            escape.deploy_service(chain_sg(1, name=name))
            escape.run(0.05)
            escape.terminate_service(name)
        name = "chain-%d" % sequence
        sequence += 1
        escape.deploy_service(chain_sg(1, name=name))
        elapsed, delivered = _burst(escape)
        profiler.disable()
        accounting.disable()
        escape.terminate_service(name)
        packets += delivered
        if best_wall is None or elapsed < best_wall:
            best_wall = elapsed
            best_dispatch = accounting.report()
        for region, stat in profiler.stats.items():
            kept = best_stats.get(region)
            if kept is None or stat.per_call < kept.per_call:
                best_stats[region] = stat
    profiler.stats = dict(best_stats)
    escape.stop()
    throughput = {
        "udp_pps_wall": PACKETS / best_wall,
        "sim_ratio": (PACKETS / RATE_PPS + 0.5) / best_wall,
    }
    return profiler, best_dispatch, throughput, packets


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="profiled demo-chain run for the perf gate")
    parser.add_argument("--out", metavar="PATH",
                        help="write the fresh profile snapshot here")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against this committed baseline; "
                             "exit 1 on regression")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="fractional regression gate (default 0.15)")
    parser.add_argument("--rounds", type=int, default=ROUNDS,
                        help="workload repetitions (default %d)" % ROUNDS)
    parser.add_argument("--attribution", metavar="PATH",
                        help="also write the unified attribution "
                             "report (regions + dispatch kinds + "
                             "throughput) here")
    args = parser.parse_args(argv)

    # best-of-several calibration: the unit divides every score, so
    # its own jitter would masquerade as uniform regressions
    calibration = min(calibrate() for _ in range(3))
    profiler, dispatch, throughput, packets = run_workload(
        rounds=args.rounds)
    meta = {"workload": "demo-chain udp burst",
            "packets_per_round": PACKETS, "rounds": args.rounds,
            "python": "%d.%d" % sys.version_info[:2]}
    snapshot = profile_snapshot(
        profiler, throughput=throughput, calibration=calibration,
        meta=meta)

    print("profiled %d packets over %d round(s), calibration %.6fs"
          % (packets, args.rounds, calibration))
    print(profiler.render_top(limit=0))

    if args.out:
        write_profile(args.out, snapshot)
        print("wrote %s" % args.out)

    if args.attribution:
        report = build_report(
            profiler, accounting=dispatch, throughput=throughput,
            calibration=calibration, meta=meta)
        with open(args.attribution, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(render_report(report))
        print("wrote %s" % args.attribution)

    if args.check:
        baseline = load_profile(args.check)
        findings = compare_profiles(baseline, snapshot,
                                    threshold=args.threshold)
        print(render_comparison(findings, args.threshold))
        if findings:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
