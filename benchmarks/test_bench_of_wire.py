"""OF1 — OpenFlow wire-format ablation: control-plane cost with
messages passed as objects vs round-tripped through the real OF 1.0
binary encoding (``ESCAPE(of_wire=True)``)."""

import pytest

from benchmarks.helpers import chain_sg, demo_topology
from repro.core import ESCAPE
from repro.openflow import FlowMod, Match, Output
from repro.openflow.wire import pack_message, unpack_message


@pytest.mark.parametrize("of_wire", [False, True])
def test_deploy_latency_by_encoding(benchmark, of_wire):
    escape = ESCAPE.from_topology(demo_topology(containers=2),
                                  of_wire=of_wire)
    escape.start()
    counter = {"n": 0}

    def deploy():
        counter["n"] += 1
        chain = escape.deploy_service(
            chain_sg(2, name="wire-%d" % counter["n"]))
        chain.undeploy()
    benchmark.pedantic(deploy, rounds=5, iterations=1)


@pytest.mark.parametrize("of_wire", [False, True])
def test_ping_latency_by_encoding(benchmark, of_wire):
    """Reactive forwarding (packet-in/flow-mod/packet-out round trips)
    is the encoding-heaviest path."""
    escape = ESCAPE.from_topology(demo_topology(containers=2),
                                  of_wire=of_wire)
    escape.start()
    h1, h2 = escape.net.get("h1"), escape.net.get("h2")

    def ping():
        result = h1.ping(h2.ip, count=3, interval=0.05)
        escape.run(1.0)
        assert result.received == 3
    benchmark.pedantic(ping, rounds=5, iterations=1)


def test_flow_mod_codec_throughput(benchmark):
    """pack+unpack cycles/second for the hot message type."""
    message = FlowMod(Match(in_port=1, dl_type=0x0800,
                            nw_src="10.0.0.1", nw_dst="10.0.0.2",
                            nw_proto=17, tp_dst=5001),
                      [Output(2)], priority=0x6000, idle_timeout=10)

    def cycle():
        for _ in range(1000):
            again = unpack_message(pack_message(message))
        assert again.match.tp_dst == 5001
    benchmark.pedantic(cycle, rounds=5, iterations=1)
    benchmark.extra_info["messages_per_round"] = 1000
