"""SCALE1/SCALE2 — the scalability claims.

SCALE1: "scaling up to hundreds of nodes" (the Mininet property ESCAPE
inherits) — emulation setup time vs node count should stay roughly
linear.

SCALE2: on-demand chain setup latency vs chain length, with a breakdown
of where the time goes (mapping vs NETCONF vs steering).
"""

import pytest

from benchmarks.helpers import chain_sg, started_escape
from repro.netem import LinearTopo, Network
from repro.pox import Core, L2LearningSwitch, OpenFlowNexus


@pytest.mark.parametrize("nodes", [10, 50, 100, 200, 400])
def test_setup_time_vs_nodes(benchmark, nodes):
    """SCALE1: build + start a linear network of ~``nodes`` nodes."""
    switches = nodes // 2

    def build():
        net = Network.build(LinearTopo(k=switches, n=1))
        nexus = OpenFlowNexus(Core(net.sim))
        L2LearningSwitch(nexus)
        net.add_controller(nexus)
        net.start()
        net.run(0.1)
        assert len(nexus.connections) == switches
        net.stop()
    benchmark.pedantic(build, rounds=3, iterations=1)


def _measure_deploy(length):
    escape = started_escape(containers=4, container_ports=length + 2)
    client_rpcs_before = sum(client.rpcs_sent for client
                             in escape.netconf_clients.values())
    flow_mods_before = escape.steering.flow_mods_sent
    sim_before = escape.sim.now
    chain = escape.deploy_service(chain_sg(length))
    row = {
        "length": length,
        "netconf_rpcs": sum(client.rpcs_sent for client
                            in escape.netconf_clients.values())
        - client_rpcs_before,
        "flow_mods": escape.steering.flow_mods_sent - flow_mods_before,
        "sim_seconds": escape.sim.now - sim_before,
    }
    chain.undeploy()
    escape.stop()
    return row


@pytest.mark.parametrize("length", [1, 2, 4, 8, 16])
def test_chain_setup_latency(benchmark, length):
    """SCALE2: wall-clock deploy latency vs chain length."""
    escape = started_escape(containers=4,
                            container_ports=length + 2)
    counter = {"n": 0}

    def deploy():
        counter["n"] += 1
        chain = escape.deploy_service(
            chain_sg(length, name="scale-%d" % counter["n"]))
        chain.undeploy()
    benchmark.pedantic(deploy, rounds=5, iterations=1)


def test_chain_setup_breakdown(benchmark):
    """SCALE2 detail: simulated-time cost split of one deploy.

    Prints the management-plane (NETCONF) and control-plane (flow-mod)
    message counts per chain length — the paper's 'on demand' claim in
    numbers.  Not a timing benchmark; assertions encode the expected
    shape (both grow linearly with chain length).
    """
    rows = []

    def measure():
        for length in (1, 2, 4, 8):
            rows.append(_measure_deploy(length))
    benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nSCALE2 breakdown (per deploy):")
    print("%8s %14s %10s %12s" % ("length", "netconf-rpcs", "flow-mods",
                                  "sim-time[s]"))
    for row in rows:
        print("%8d %14d %10d %12.4f"
              % (row["length"], row["netconf_rpcs"], row["flow_mods"],
                 row["sim_seconds"]))
    # shape: RPCs = 3 per VNF (start + 2 connects), linear in length
    assert rows[0]["netconf_rpcs"] == 3
    assert rows[-1]["netconf_rpcs"] == 3 * 8
    # flow-mods grow with chain length too
    assert rows[-1]["flow_mods"] > rows[0]["flow_mods"]
    # management-plane latency dominates and is linear-ish
    assert rows[-1]["sim_seconds"] > rows[0]["sim_seconds"]
