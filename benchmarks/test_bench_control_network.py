"""NC2 — in-band vs out-of-band control network (the dedicated control
network ablation): deploy latency and management RTT when NETCONF rides
the emulated hub instead of dedicated pipes."""

import pytest

from benchmarks.helpers import chain_sg, demo_topology
from repro.core import ESCAPE


def started(control_network):
    escape = ESCAPE.from_topology(demo_topology(containers=2),
                                  control_network=control_network)
    escape.start()
    return escape


@pytest.mark.parametrize("control_network", ["outband", "inband"])
def test_deploy_latency_by_control_network(benchmark, control_network):
    escape = started(control_network)
    counter = {"n": 0}

    def deploy():
        counter["n"] += 1
        chain = escape.deploy_service(
            chain_sg(2, name="ncn-%d" % counter["n"]))
        chain.undeploy()
    benchmark.pedantic(deploy, rounds=5, iterations=1)


@pytest.mark.parametrize("control_network", ["outband", "inband"])
def test_handler_read_rtt(benchmark, control_network):
    escape = started(control_network)
    chain = escape.deploy_service(chain_sg(1, name="rtt-chain"))

    def read():
        chain.read_handler("v0", "cnt_in.count")
    benchmark.pedantic(read, rounds=10, iterations=1)


def test_inband_simulated_cost_table(benchmark):
    """Simulated management-plane time per deploy: the hub's frame
    serialization + repeat adds real emulated cost that the out-of-band
    pipes don't pay.  Prints the NC2 table."""
    rows = []

    def measure():
        for mode in ("outband", "inband"):
            escape = started(mode)
            start = escape.sim.now
            chain = escape.deploy_service(chain_sg(2))
            elapsed = escape.sim.now - start
            hub_frames = (escape.mgmt_hub.frames_repeated
                          if mode == "inband" else 0)
            rows.append((mode, elapsed, hub_frames))
            chain.undeploy()
            escape.stop()
    benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nNC2: control-network ablation (one 2-VNF deploy)")
    print("%10s %18s %12s" % ("mode", "sim time [ms]", "hub frames"))
    for mode, elapsed, hub_frames in rows:
        print("%10s %18.3f %12d" % (mode, elapsed * 1e3, hub_frames))
    # both modes complete; inband pays hub traffic
    assert rows[1][2] > 0
