"""FIG1 — Fig. 1 of the paper: the three UNIFY layers, assembled.

The figure is an architecture diagram, so the reproduction is the full
bring-up: build the infrastructure layer, attach the orchestration
layer (controller + NETCONF sessions + mappers), expose the service
layer, and assert every pictured component is present and functional.
The benchmark measures the cost of that bring-up.
"""

import pytest

from benchmarks.helpers import demo_topology
from repro.core import ESCAPE


def build_and_verify():
    escape = ESCAPE.from_topology(demo_topology(containers=2))
    escape.start()
    # -- infrastructure layer (Mininet-based, per the figure)
    assert len(escape.net.hosts()) == 2
    assert len(escape.net.switches()) == 2          # Open vSwitch analog
    assert len(escape.net.vnf_containers()) == 2    # VNF containers
    # every container has a NETCONF agent with the YANG model loaded
    for name, agent in escape.agents.items():
        assert agent.module.name == "vnf"
    # -- orchestration layer
    assert len(escape.nexus.connections) == 2        # POX nexus
    assert escape.core.has_component("steering")     # traffic steering
    assert escape.core.has_component("discovery")    # topology view
    assert set(escape.mappers) >= {"greedy", "shortest-path",
                                   "backtracking"}   # mapping algorithms
    assert escape.orchestrator.view.containers()     # global resource view
    # -- service layer
    assert escape.catalog.names()                    # VNF catalog
    assert escape.service_layer is not None          # SG / SLA handling
    escape.stop()
    return escape


def test_fig1_full_stack_bringup(benchmark):
    benchmark.pedantic(build_and_verify, rounds=3, iterations=1)
