"""MAP1 — the mapping-algorithm comparison (the "different optimization
algorithms" the orchestrator can swap).

Random batches of chain requests are embedded with each strategy until
rejection; we report acceptance count, mean chain delay (path quality)
and mapper runtime.  Expected shape: backtracking >= shortest-path >=
greedy on quality, reversed on runtime.
"""

import random

import pytest

from repro.core import (BacktrackingMapper, CongestionAwareMapper,
                        GreedyMapper, MappingError, ResourceView,
                        ServiceGraph, ShortestPathMapper,
                        default_catalog)

MAPPERS = {
    "greedy": GreedyMapper,
    "shortest-path": ShortestPathMapper,
    "congestion-aware": CongestionAwareMapper,
    "backtracking": BacktrackingMapper,
}


def random_substrate(rng, switches=6, containers=6):
    """A ring of switches + chords, containers attached randomly."""
    view = ResourceView()
    view.add_sap("h1")
    view.add_sap("h2")
    for index in range(switches):
        view.add_switch("s%d" % index, index + 1)
    for index in range(switches):
        view.add_link("s%d" % index, "s%d" % ((index + 1) % switches),
                      delay=rng.uniform(0.001, 0.005), bandwidth=1e9)
    # a couple of chords
    for _ in range(switches // 2):
        a, b = rng.sample(range(switches), 2)
        if not view.graph.has_edge("s%d" % a, "s%d" % b):
            view.add_link("s%d" % a, "s%d" % b,
                          delay=rng.uniform(0.001, 0.005), bandwidth=1e9)
    view.add_link("h1", "s0", delay=0.001)
    view.add_link("h2", "s%d" % (switches // 2), delay=0.001)
    for index in range(containers):
        name = "nc%d" % index
        view.add_container(name, cpu=rng.uniform(1.0, 3.0),
                           mem=rng.uniform(512, 2048), ports=8)
        view.add_link(name, "s%d" % rng.randrange(switches),
                      delay=rng.uniform(0.0001, 0.001))
    return view


def random_request(rng, index):
    sg = ServiceGraph("req-%d" % index)
    sg.add_sap("h1")
    sg.add_sap("h2")
    length = rng.randint(1, 3)
    names = []
    for vnf_index in range(length):
        name = "v%d_%d" % (index, vnf_index)
        sg.add_vnf(name, rng.choice(["firewall", "forwarder",
                                     "rate_limiter", "monitor"]))
        names.append(name)
    sg.add_chain(["h1"] + names + ["h2"])
    return sg


def run_batch(mapper_name, seed=7, requests=30):
    rng = random.Random(seed)
    view = random_substrate(rng)
    mapper = MAPPERS[mapper_name](default_catalog())
    rng_requests = random.Random(seed + 1)
    accepted = 0
    total_delay = 0.0
    for index in range(requests):
        sg = random_request(rng_requests, index)
        try:
            mapping = mapper.map(sg, view)
        except MappingError:
            continue
        accepted += 1
        total_delay += mapping.total_delay(view)
    return accepted, (total_delay / accepted if accepted else 0.0)


@pytest.mark.parametrize("mapper_name", list(MAPPERS))
def test_mapper_runtime(benchmark, mapper_name):
    """Runtime of embedding a 30-request batch (the speed column)."""
    accepted, _delay = benchmark(run_batch, mapper_name)
    assert accepted > 0


def test_mapper_quality_table(benchmark):
    """Acceptance + quality comparison across seeds (the quality
    columns); prints the MAP1 table and asserts its expected shape."""
    rows = {}

    def measure():
        for mapper_name in MAPPERS:
            accepted_total = 0
            delay_total = 0.0
            for seed in (1, 2, 3, 4, 5):
                accepted, mean_delay = run_batch(mapper_name, seed=seed)
                accepted_total += accepted
                delay_total += mean_delay
            rows[mapper_name] = (accepted_total, delay_total / 5)
    benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\nMAP1: mapper comparison (5 seeds x 30 requests)")
    print("%16s %10s %18s" % ("mapper", "accepted", "mean delay [ms]"))
    for name, (accepted, delay) in rows.items():
        print("%16s %10d %18.3f" % (name, accepted, delay * 1e3))
    # shape: backtracking's path quality is at least as good as greedy's
    assert rows["backtracking"][1] <= rows["greedy"][1] + 1e-9
    # acceptance: smarter mappers accept at least as many requests
    assert rows["backtracking"][0] >= rows["greedy"][0]
    assert rows["shortest-path"][0] >= rows["greedy"][0]
