"""SCEN1 — scenario-campaign smoke benchmark.

One seed of a small fat-tree scenario end-to-end: topology build,
ESCAPE bring-up, chain deploys, subscriber workload, bundle assembly.
Timing it pins the campaign runner's fixed overhead; the assertions
re-check the CI gate criteria (all chains deployed, nothing
unrecovered, traffic delivered) so a regression in any layer below
surfaces here too.
"""

from repro.scenario import CampaignRunner

SMOKE = {
    "name": "bench-smoke",
    "duration": 2.0,
    "seeds": [1],
    "topology": {"kind": "fat_tree", "k": 2, "containers_per_pod": 1,
                 "container_ports": 4},
    "chains": {"count": 1, "templates": ["web"]},
    "workload": {"subscribers_per_sap": 50, "flows_per_subscriber": 0.05,
                 "flow_rate_pps": 200, "flow_duration": 0.2,
                 "max_flows": 10},
    "sla": {"max_delay": 0.1},
}


def test_campaign_seed_smoke(benchmark):
    """SCEN1: wall-clock cost of one full (scenario, seed) run."""
    bundles = []

    def run_once():
        runner = CampaignRunner(dict(SMOKE))
        bundles.append(runner.run_seed(1, write=False))
        assert runner.gate() == []
    benchmark.pedantic(run_once, rounds=3, iterations=1)

    bundle = bundles[-1]
    assert bundle["chains"]["failed"] == []
    assert bundle["recovery"]["unrecovered"] == []
    workload = bundle["workload"]
    assert workload["packets_sent"] > 0
    assert workload["packets_received"] == workload["packets_sent"]
    assert bundle["throughput"]["udp_pps_wall"] > 0
    print("\nSCEN1 smoke: %d pkts, p50=%.2fms p99=%.2fms, %.0f pps wall"
          % (workload["packets_received"],
             workload["delay_p50"] * 1e3, workload["delay_p99"] * 1e3,
             bundle["throughput"]["udp_pps_wall"]))
