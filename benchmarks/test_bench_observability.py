"""OBS — overhead of the observability stack.

Three questions, answered in wall-clock terms:

* how much does emitting a structured event cost (the price every
  instrumented layer pays),
* what does an attached flight-recorder tap add to the dataplane,
* and — the guardrail — does the *untapped* dataplane stay fast?  The
  tap hook in ``Link.transmit``/``_deliver`` is a single falsy check
  when no tap is attached; this suite re-times the untapped path after
  an attach/detach cycle and fails if it regressed more than 10%
  against the taps-never-attached baseline measured in the same run.
"""

import time

import pytest

from benchmarks.helpers import attach_telemetry, chain_sg, started_escape
from repro.telemetry import EventLog, Telemetry, Tracer


# -- event log ---------------------------------------------------------------

def test_event_emit(benchmark):
    log = EventLog(capacity=4096)

    def emit():
        log.info("bench.source", "bench.event", "message", key="value")
    benchmark(emit)
    assert log.emitted > 0


def test_event_emit_with_open_span(benchmark):
    """Emission inside a span also stamps the trace id."""
    tracer = Tracer()
    log = EventLog(tracer=tracer)
    with tracer.span("bench.op"):
        benchmark(lambda: log.info("bench.source", "bench.event"))
    assert log.events()[-1].trace_id is not None


def test_event_emit_suppressed(benchmark):
    """Below-threshold events should be near-free."""
    log = EventLog(min_severity="ERROR")
    benchmark(lambda: log.debug("bench.source", "bench.event"))
    assert len(log) == 0


def test_event_query_warn_of_mixed_log(benchmark):
    log = EventLog(capacity=8192)
    for index in range(4000):
        (log.warn if index % 10 == 0 else log.debug)(
            "layer.comp%d" % (index % 7), "name%d" % (index % 13))
    result = benchmark(lambda: log.query(min_severity="WARN"))
    assert len(result) == 400


# -- dataplane tap overhead ---------------------------------------------------

def _udp_workload(escape, packets=300):
    """Drive a burst of UDP through the deployed chain, return the
    host-process wall-clock seconds the simulation took."""
    h1, h2 = escape.net.get("h1"), escape.net.get("h2")
    before = h2.udp_rx_count
    h1.start_udp_flow(h2.ip, 5001, rate_pps=1000,
                      duration=packets / 1000.0, payload_size=200)
    started = time.perf_counter()
    escape.run(packets / 1000.0 + 0.5)
    elapsed = time.perf_counter() - started
    assert h2.udp_rx_count - before == packets
    return elapsed


def _min_of(samples_fn, rounds=5):
    return min(samples_fn() for _ in range(rounds))


@pytest.fixture(scope="module")
def forwarding_escape():
    escape = started_escape(containers=2, container_ports=4)
    escape.deploy_service(chain_sg(1, name="obs-chain"))
    return escape


def test_tap_attached_dataplane(benchmark, forwarding_escape):
    """Dataplane cost with every chain link tapped (ring appends)."""
    escape = forwarding_escape
    chain = escape.service_layer.services["obs-chain"]
    taps = escape.recorder.attach_chain(chain)
    try:
        benchmark.pedantic(lambda: _udp_workload(escape),
                           rounds=3, iterations=1)
        assert sum(tap.matched for tap in taps) > 0
    finally:
        escape.recorder.detach_all()
    attach_telemetry(benchmark, escape)


def test_untapped_dataplane_no_regression(forwarding_escape):
    """The 10% guardrail: after taps come and go, the no-tap path must
    cost what it did before any tap existed (min-of-N to de-noise)."""
    escape = forwarding_escape
    chain = escape.service_layer.services["obs-chain"]
    assert all(not link.taps for link in escape.net.links)

    _udp_workload(escape)  # warm-up
    baseline = _min_of(lambda: _udp_workload(escape))

    escape.recorder.attach_chain(chain)
    _udp_workload(escape)
    escape.recorder.detach_all()
    assert all(not link.taps for link in escape.net.links)

    retimed = _min_of(lambda: _udp_workload(escape))
    assert retimed <= baseline * 1.10, (
        "untapped dataplane regressed: %.4fs vs %.4fs baseline"
        % (retimed, baseline))


# -- profiler overhead --------------------------------------------------------

def test_profiler_disabled_region_cost(benchmark):
    """The disabled hot-path check: one attribute read, no object."""
    from repro.telemetry import NULL_REGION, Profiler
    profiler = Profiler()

    def disabled_path():
        if profiler.enabled:  # the pattern every call site uses
            with profiler.profile("bench.region.hot"):
                pass
    benchmark(disabled_path)
    assert profiler.profile("bench.region.hot") is NULL_REGION


def test_profiler_enabled_region_cost(benchmark):
    """Full enter/exit bookkeeping of one enabled region."""
    from repro.telemetry import Profiler
    profiler = Profiler().enable()

    def enabled_path():
        with profiler.profile("bench.region.hot"):
            pass
    benchmark(enabled_path)
    assert profiler.region("bench.region.hot").calls > 0
    assert profiler.overhead > 0.0


def test_profiler_enabled_captures_all_layers(forwarding_escape):
    """With the profiler on, one workload burst attributes time to the
    dataplane regions of every layer it crosses — and accounts for its
    own bookkeeping cost."""
    escape = forwarding_escape
    profiler = escape.profiler
    profiler.enable()
    try:
        _udp_workload(escape)
    finally:
        profiler.disable()
    for region in ("sim.event.dispatch", "netem.link.transmit",
                   "click.element.push"):
        stat = profiler.region(region)
        assert stat is not None and stat.calls > 0, region
    dispatch = profiler.region("sim.event.dispatch")
    assert dispatch.cum >= dispatch.self_time > 0.0
    assert profiler.overhead > 0.0
    assert profiler.collapsed()
    profiler.reset()


def test_unprofiled_dataplane_no_regression(forwarding_escape):
    """The <5% guardrail the ISSUE promises: after the profiler has
    been on and off again, the no-profile dataplane must cost what it
    did before the profiler ever ran (min-of-N to de-noise)."""
    escape = forwarding_escape
    profiler = escape.profiler
    assert not profiler.enabled

    _udp_workload(escape)  # warm-up
    baseline = _min_of(lambda: _udp_workload(escape))

    profiler.enable()
    _udp_workload(escape)
    profiler.disable()
    profiler.reset()

    retimed = _min_of(lambda: _udp_workload(escape))
    assert retimed <= baseline * 1.05, (
        "unprofiled dataplane regressed: %.4fs vs %.4fs baseline"
        % (retimed, baseline))


# -- flowtrace (sampled path tracing) overhead --------------------------------

def test_flowtrace_disabled_record_cost(benchmark):
    """The disabled hot-path check: one attribute read per postcard
    site, same discipline as the profiler."""
    from repro.telemetry import FlowTrace
    flowtrace = FlowTrace()
    data = bytes(range(200))

    def disabled_path():
        if flowtrace.enabled:  # the pattern every call site uses
            flowtrace.record("switch", "s1", 0.0, data, dpid=1)
    benchmark(disabled_path)
    assert flowtrace.postcards == 0


def test_flowtrace_enabled_record_cost(benchmark):
    """The enabled cost of one postcard site: a seeded CRC over the
    frame tail plus, for sampled packets, one list append."""
    from repro.telemetry import FlowTrace
    flowtrace = FlowTrace().enable(rate=64)
    data = bytes(range(200))
    benchmark(lambda: flowtrace.record("switch", "s1", 0.0, data,
                                       dpid=1))


def test_flowtrace_disabled_no_regression(forwarding_escape):
    """With sampling off, the instrumented dataplane must cost what
    it did before flowtrace ever ran.  The *site* cost is pinned by
    ``test_flowtrace_disabled_record_cost`` (one attribute check,
    tens of ns — well under 1% of per-packet dataplane cost); this
    end-to-end A/B gates at the same 5% machine-noise budget as the
    profiler and accounting guards, with the two populations
    interleaved so clock drift hits both sides equally."""
    escape = forwarding_escape
    flowtrace = escape.flowtrace
    assert not flowtrace.enabled

    def measure():
        before, after = [], []
        for _ in range(5):
            before.append(_udp_workload(escape))
            flowtrace.enable(rate=1, seed=1)
            _udp_workload(escape)
            assert flowtrace.postcards > 0
            flowtrace.disable()
            flowtrace.reset()
            after.append(_udp_workload(escape))
        return min(before), min(after)

    _udp_workload(escape)  # warm-up
    # a load burst on a shared box can still skew one whole pass, so
    # only fail when the regression reproduces on every attempt — a
    # real slowdown does, a scheduling artifact does not
    for _ in range(3):
        baseline, retimed = measure()
        if retimed <= baseline * 1.05:
            break
    else:
        raise AssertionError(
            "flowtrace-disabled dataplane regressed: %.4fs vs %.4fs "
            "baseline" % (retimed, baseline))


def test_flowtrace_enabled_dataplane(benchmark, forwarding_escape):
    """Dataplane cost with 1/64 sampling live on every hop."""
    escape = forwarding_escape
    flowtrace = escape.flowtrace
    flowtrace.enable(rate=64, seed=1)
    try:
        benchmark.pedantic(lambda: _udp_workload(escape),
                           rounds=3, iterations=1)
    finally:
        flowtrace.disable()
        flowtrace.reset()
    attach_telemetry(benchmark, escape)


# -- dispatch accounting overhead ---------------------------------------------

def test_accounting_disabled_dispatch_cost(benchmark):
    """The disabled hot path: one attribute read per dispatched event,
    same budget as the disabled profiler."""
    from repro.sim import Simulator
    sim = Simulator()
    assert not sim.accounting.enabled

    def dispatch_event():
        sim.schedule(0.0, lambda: None)
        sim.step()
    benchmark(dispatch_event)
    assert sim.accounting.dispatched == 0


def test_accounting_enabled_dispatch_cost(benchmark):
    """Full per-event bookkeeping: kind lookup, lag, self-time."""
    from repro.sim import Simulator
    sim = Simulator()
    sim.accounting.enable()

    def dispatch_event():
        sim.schedule(0.0, lambda: None)
        sim.step()
    benchmark(dispatch_event)
    assert sim.accounting.dispatched > 0
    assert sim.accounting.kind_stats()


def test_unaccounted_dataplane_no_regression(forwarding_escape):
    """The <5% guardrail extended to dispatch accounting: after it has
    been on and off again, the unaccounted dataplane must cost what it
    did before accounting ever ran (min-of-N to de-noise)."""
    escape = forwarding_escape
    accounting = escape.accounting
    assert not accounting.enabled

    _udp_workload(escape)  # warm-up
    baseline = _min_of(lambda: _udp_workload(escape))

    accounting.enable()
    _udp_workload(escape)
    accounting.disable()
    accounting.reset()

    retimed = _min_of(lambda: _udp_workload(escape))
    assert retimed <= baseline * 1.05, (
        "unaccounted dataplane regressed: %.4fs vs %.4fs baseline"
        % (retimed, baseline))


def test_attribution_reconciles_with_profiler(forwarding_escape):
    """The acceptance criterion: per-kind self-times sum to within 10%
    of the profiler's inclusive sim.event.dispatch time over one
    workload burst (both layers watching the same events)."""
    from repro.telemetry.introspect import COVERAGE_TOLERANCE, build_report
    escape = forwarding_escape
    profiler = escape.profiler
    accounting = escape.accounting
    profiler.reset()
    profiler.enable()
    accounting.reset()
    accounting.enable()
    try:
        _udp_workload(escape)
    finally:
        profiler.disable()
        accounting.disable()
    report = build_report(profiler, accounting)
    coverage = report["coverage"]
    assert coverage["ratio"] is not None
    assert abs(coverage["ratio"] - 1.0) <= COVERAGE_TOLERANCE, (
        "kind self-times %.6fs vs dispatch cum %.6fs (ratio %.3f)"
        % (coverage["kinds_self_s"], coverage["dispatch_cum_s"],
           coverage["ratio"]))
    assert report["dispatch"]["dispatched"] == \
        profiler.region("sim.event.dispatch").calls
    profiler.reset()
    accounting.reset()


def test_series_sampling_sweep(benchmark):
    """One registry.sample() sweep over a realistically sized registry
    (the recurring cost the series sampler pays 4x per sim second)."""
    from repro.telemetry import MetricsRegistry
    ticks = {"now": 0.0}
    registry = MetricsRegistry(clock=lambda: ticks["now"])
    for index in range(100):
        registry.counter("bench.c%d.value" % index).inc(index)

    def sweep():
        ticks["now"] += 1.0
        registry.sample()
    benchmark(sweep)
    assert registry.sample_count > 0
    assert registry.sample_seconds > 0.0


def test_sla_monitor_overhead(benchmark):
    """A probing SLA monitor on an idle chain: the cost of demo step 5
    running continuously."""
    escape = started_escape(containers=2, container_ports=4)
    sg = chain_sg(1, name="sla-bench")
    sg.add_requirement("h1", "h2", max_delay=0.5)
    escape.deploy_service(sg)
    monitor = escape.sla_monitors["sla-bench"]

    def probe_second():
        rounds_before = monitor.rounds
        escape.run(1.0)
        assert monitor.rounds > rounds_before
    benchmark.pedantic(probe_second, rounds=3, iterations=1)
    assert monitor.state == "OK"
    attach_telemetry(benchmark, escape)


def test_snapshot_with_events(benchmark):
    """Serializing a busy bundle (metrics + traces + events)."""
    telemetry = Telemetry()
    for index in range(200):
        telemetry.metrics.counter("bench.c%d.value" % index).inc()
        telemetry.events.info("bench.src", "e%d" % index)
    snapshot = benchmark(telemetry.snapshot)
    assert len(snapshot["events"]) == 200
