"""Shared workload builders for the benchmark suite."""

from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph, load_topology


def demo_topology(containers=2, container_ports=6, cpu=16.0,
                  mem=16384.0):
    """The benchmark substrate: two switches, two hosts, N containers."""
    nodes = [
        {"name": "h1", "role": "host"},
        {"name": "h2", "role": "host"},
        {"name": "s1", "role": "switch"},
        {"name": "s2", "role": "switch"},
    ]
    links = [
        {"from": "h1", "to": "s1", "bandwidth": 1e9, "delay": 0.001},
        {"from": "s1", "to": "s2", "bandwidth": 1e9, "delay": 0.002},
        {"from": "h2", "to": "s2", "bandwidth": 1e9, "delay": 0.001},
    ]
    for index in range(containers):
        name = "nc%d" % (index + 1)
        nodes.append({"name": name, "role": "vnf_container",
                      "cpu": cpu, "mem": mem})
        switch = "s1" if index % 2 == 0 else "s2"
        links.extend({"from": name, "to": switch, "delay": 0.0005}
                     for _ in range(container_ports))
    return load_topology({"nodes": nodes, "links": links})


def chain_sg(length, name="bench-chain", vnf_type="forwarder"):
    """A linear chain h1 -> VNF x length -> h2."""
    vnf_names = ["v%d" % index for index in range(length)]
    return load_service_graph({
        "name": name,
        "saps": ["h1", "h2"],
        "vnfs": [{"name": vnf, "type": vnf_type} for vnf in vnf_names],
        "chain": ["h1"] + vnf_names + ["h2"],
    })


def started_escape(containers=2, container_ports=6, **kwargs):
    escape = ESCAPE.from_topology(
        demo_topology(containers, container_ports, **kwargs))
    escape.start()
    return escape


def attach_telemetry(benchmark, escape):
    """Embed the framework's telemetry snapshot in the benchmark's
    ``extra_info`` so BENCH_*.json trajectories carry counter data
    alongside the timings."""
    benchmark.extra_info["telemetry"] = escape.metrics_snapshot()
