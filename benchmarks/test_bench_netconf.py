"""NC1 — management-plane cost: NETCONF RPC round-trips, framing
overhead, and the batching ablation (one RPC per VNF vs one
edit-config carrying the batch)."""

import xml.etree.ElementTree as ET

import pytest

from repro.netconf import (NetconfClient, NetconfServer, TransportPair,
                           VNFAgent)
from repro.netconf.framing import ChunkedFramer, EomFramer
from repro.netconf.messages import qn
from repro.netconf.vnf_yang import VNF_NS
from repro.netem import Network
from repro.sim import Simulator

SIMPLE_VNF = "src :: RatedSource(RATE 10) -> cnt :: Counter -> Discard;"


def agent_rig():
    net = Network()
    container = net.add_vnf_container("nc1", cpu=64.0, mem=65536.0)
    pair = TransportPair(net.sim, latency=0.001)
    VNFAgent(container, pair.server)
    client = NetconfClient(pair.client)
    client.wait_connected()
    return net, client


def test_rpc_roundtrip(benchmark):
    """get (state read) round-trip, wall-clock."""
    net, client = agent_rig()

    def get():
        client.get().result(net.sim)
    benchmark(get)


def test_start_stop_vnf_rpc(benchmark):
    """startVNF + stopVNF pair (the deploy inner loop)."""
    net, client = agent_rig()
    counter = {"n": 0}

    def cycle():
        counter["n"] += 1
        vnf_id = "v%d" % counter["n"]
        client.rpc("startVNF", VNF_NS, {
            "id": vnf_id, "click-config": SIMPLE_VNF,
            "devices": ""}).result(net.sim)
        client.rpc("stopVNF", VNF_NS, {"id": vnf_id}).result(net.sim)
    benchmark.pedantic(cycle, rounds=10, iterations=1)


@pytest.mark.parametrize("framer_cls", [EomFramer, ChunkedFramer])
def test_framing_overhead(benchmark, framer_cls):
    """Pure framing encode+decode cost at protocol message sizes."""
    payload = b"<rpc>" + b"x" * 2000 + b"</rpc>"

    def frame_cycle():
        tx, rx = framer_cls(), framer_cls()
        for _ in range(200):
            out = rx.feed(tx.frame(payload))
            assert out
    benchmark.pedantic(frame_cycle, rounds=5, iterations=1)


def test_batching_ablation(benchmark):
    """One edit-config carrying N items vs N separate RPCs — prints the
    NC1 table of simulated management-plane time and asserts batching
    wins (fewer round-trip latencies)."""
    rows = []

    def measure():
        for batch in (1, 4, 16, 64):
            rows.append(_run_batch_comparison(batch))
    benchmark.pedantic(measure, rounds=1, iterations=1)
    _print_batching_table(rows)
    # shape: batching amortizes the RTT — the gap widens with N
    assert rows[-1][1] / rows[-1][2] > rows[0][1] / rows[0][2]
    assert rows[-1][1] > rows[-1][2]


def _run_batch_comparison(batch):
    if True:
        # N separate RPCs (each a get-config round trip)
        sim = Simulator()
        pair = TransportPair(sim, latency=0.002)
        NetconfServer(pair.server)
        client = NetconfClient(pair.client)
        client.wait_connected()
        start = sim.now
        for index in range(batch):
            config = ET.Element(qn("item%d" % index, "urn:bench"))
            config.text = "v"
            client.edit_config(config).result(sim)
        unbatched = sim.now - start

        # one edit-config carrying all N items under one container
        sim2 = Simulator()
        pair2 = TransportPair(sim2, latency=0.002)
        NetconfServer(pair2.server)
        client2 = NetconfClient(pair2.client)
        client2.wait_connected()
        start2 = sim2.now
        bundle = ET.Element(qn("bundle", "urn:bench"))
        for index in range(batch):
            ET.SubElement(bundle,
                          qn("item%d" % index, "urn:bench")).text = "v"
        client2.edit_config(bundle).result(sim2)
        batched = sim2.now - start2
        return (batch, unbatched, batched)


def _print_batching_table(rows):
    print("\nNC1: management-plane time, batched vs unbatched edits")
    print("%8s %16s %16s %8s" % ("items", "unbatched [ms]",
                                 "batched [ms]", "ratio"))
    for batch, unbatched, batched in rows:
        print("%8d %16.2f %16.2f %8.1fx"
              % (batch, unbatched * 1e3, batched * 1e3,
                 unbatched / batched))


@pytest.mark.parametrize("agents", [1, 8, 32])
def test_agent_fanout(benchmark, agents):
    """Orchestrator querying N containers in parallel (one poll wave)."""
    net = Network()
    clients = []
    for index in range(agents):
        container = net.add_vnf_container("nc%d" % index)
        pair = TransportPair(net.sim, latency=0.001)
        VNFAgent(container, pair.server)
        client = NetconfClient(pair.client)
        clients.append(client)
    for client in clients:
        client.wait_connected()

    def wave():
        pendings = [client.get() for client in clients]
        net.run(0.5)
        assert all(pending.done for pending in pendings)
    benchmark.pedantic(wave, rounds=5, iterations=1)
