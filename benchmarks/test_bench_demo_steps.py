"""DEMO1–DEMO5 — the paper's five demo steps, each as a benchmark.

(1) define VNF containers + topology, (2) build the SG, (3) map +
deploy, (4) live traffic, (5) monitoring.  Parameter sweeps show how
each step scales with its natural knob.
"""

import pytest

from benchmarks.helpers import (attach_telemetry, chain_sg, demo_topology,
                                started_escape)
from repro.core import ESCAPE
from repro.core.sgfile import load_service_graph


# -- step 1: topology with VNF containers ------------------------------------

@pytest.mark.parametrize("containers", [2, 8, 32, 64])
def test_step1_topology_setup(benchmark, containers):
    def build():
        escape = ESCAPE.from_topology(
            demo_topology(containers=containers, container_ports=2))
        escape.start()
        assert len(escape.netconf_clients) == containers
        escape.stop()
    benchmark.pedantic(build, rounds=3, iterations=1)


# -- step 2: SG construction from the catalog ----------------------------------

@pytest.mark.parametrize("length", [1, 4, 16])
def test_step2_sg_construction(benchmark, length):
    def build():
        sg = chain_sg(length)
        sg.validate()
        assert len(sg.vnfs) == length
        return sg
    benchmark(build)


def test_step2_branching_sg(benchmark):
    def build():
        return load_service_graph({
            "name": "branching",
            "saps": ["h1", "h2"],
            "vnfs": [
                {"name": "lb", "type": "load_balancer"},
                {"name": "fwa", "type": "firewall"},
                {"name": "fwb", "type": "firewall"},
                {"name": "join", "type": "forwarder"},
            ],
            "links": [
                {"from": "h1", "to": "lb"},
                {"from": "lb", "to": "fwa"},
                {"from": "lb", "to": "fwb"},
                {"from": "fwa", "to": "join"},
                {"from": "fwb", "to": "join"},
                {"from": "join", "to": "h2"},
            ],
        })
    benchmark(build)


# -- step 3: map + deploy -------------------------------------------------------

@pytest.mark.parametrize("length", [1, 2, 4, 8])
def test_step3_map_and_deploy(benchmark, length):
    """Deploy latency vs chain length (NETCONF + steering included)."""
    escape = started_escape(containers=4, container_ports=2 * length + 2)

    counter = {"n": 0}

    def deploy_undeploy():
        counter["n"] += 1
        sg = chain_sg(length, name="bench-%d" % counter["n"])
        chain = escape.deploy_service(sg)
        assert chain.active
        chain.undeploy()
    benchmark.pedantic(deploy_undeploy, rounds=5, iterations=1)
    attach_telemetry(benchmark, escape)


# -- step 4: live traffic through a deployed chain --------------------------------

def test_step4_traffic(benchmark):
    escape = started_escape(containers=2)
    chain = escape.deploy_service(chain_sg(2, name="traffic-chain"))
    h1, h2 = escape.net.get("h1"), escape.net.get("h2")

    def ping_train():
        result = h1.ping(h2.ip, count=5, interval=0.05)
        escape.run(1.0)
        assert result.received == 5
        return result
    benchmark.pedantic(ping_train, rounds=5, iterations=1)
    assert int(chain.read_handler("v0", "cnt_in.count")) >= 25
    attach_telemetry(benchmark, escape)


def test_step4_udp_throughput(benchmark):
    escape = started_escape(containers=2)
    escape.deploy_service(chain_sg(1, name="tput-chain"))
    h1, h2 = escape.net.get("h1"), escape.net.get("h2")

    def blast():
        before = h2.udp_rx_count
        h1.start_udp_flow(h2.ip, 5001, rate_pps=500, duration=1.0,
                          payload_size=500)
        escape.run(2.0)
        assert h2.udp_rx_count - before == 500
    benchmark.pedantic(blast, rounds=3, iterations=1)


# -- step 5: monitoring -------------------------------------------------------------

@pytest.mark.parametrize("vnfs", [1, 4])
def test_step5_monitoring(benchmark, vnfs):
    """Cost of one Clicky-style poll round over N VNFs (NETCONF RTT)."""
    escape = started_escape(containers=2,
                            container_ports=2 * vnfs + 2)
    chain = escape.deploy_service(chain_sg(vnfs, name="mon-chain"))
    monitor = escape.monitor(chain, interval=0.5)

    def poll_round():
        for vnf_name, handler in monitor._watch:
            monitor._poll_one(vnf_name, handler)
        escape.run(0.2)  # let replies land
    benchmark.pedantic(poll_round, rounds=5, iterations=1)
    assert monitor.poll_errors == 0
    attach_telemetry(benchmark, escape)
