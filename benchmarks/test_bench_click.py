"""CLICK1 — VNF datapath cost: per-packet forwarding rate of each
catalog VNF's Click pipeline, plus element micro-benchmarks."""

import pytest

from repro.click import ClickPacket, Router
from repro.click.elements.device import Device
from repro.core import default_catalog
from repro.packet import Ethernet, IPv4, TCP, UDP
from repro.sim import Simulator

PACKETS = 2000


def sample_packet():
    return ClickPacket.from_header(Ethernet(
        src="00:00:00:00:00:01", dst="00:00:00:00:00:02",
        type=Ethernet.IP_TYPE,
        payload=IPv4(srcip="10.0.0.1", dstip="10.0.0.2",
                     protocol=IPv4.UDP_PROTOCOL,
                     payload=UDP(srcport=1000, dstport=80,
                                 payload=b"x" * 64))))


def vnf_rig(vnf_type, params=None):
    """Build a catalog VNF and return (router, in-device, out-counter)."""
    entry = default_catalog().get(vnf_type)
    router = Router.from_config(entry.render(params), sim=Simulator())
    router.device_map = {dev: Device(dev) for dev in entry.devices}
    router.start()
    return router, router.device_map["in0"]


@pytest.mark.parametrize("vnf_type,params", [
    ("forwarder", None),
    ("firewall", {"rules": "allow udp dst port 80, drop all"}),
    ("dpi", None),
    ("monitor", None),
    ("nat", {"nat_ip": "192.0.2.1"}),
])
def test_catalog_vnf_forwarding_rate(benchmark, vnf_type, params):
    """Packets/second each catalog VNF sustains (push path)."""
    router, in_device = vnf_rig(vnf_type, params)
    wire = sample_packet().data

    def blast():
        for _ in range(PACKETS):
            in_device.deliver(wire)
    benchmark.pedantic(blast, rounds=3, iterations=1)
    assert int(router.read_handler("cnt_in.count")) >= PACKETS
    benchmark.extra_info["packets_per_round"] = PACKETS


@pytest.mark.parametrize("expression", [
    "udp",
    "tcp dst port 80",
    "(tcp or udp) and dst net 10.0.0.0/8 and not src host 9.9.9.9",
])
def test_ipclassifier_expression_cost(benchmark, expression):
    """Per-packet cost of classifier expressions of rising complexity."""
    router = Router.from_config(
        "cl :: IPClassifier(%s, -); Idle -> cl;"
        "cl[0] -> Discard; cl[1] -> Discard;" % expression)
    router.start()
    classifier = router.element("cl")
    packet = sample_packet()

    def classify():
        for _ in range(PACKETS):
            classifier.push(0, packet)
    benchmark.pedantic(classify, rounds=3, iterations=1)


def test_queue_pipeline_throughput(benchmark):
    """The push->Queue->pull boundary under sustained load."""
    sim = Simulator()
    router = Router.from_config(
        "src :: InfiniteSource(LIMIT 20000) -> Queue(1000)"
        " -> Unqueue(BURST 32) -> cnt :: Counter -> Discard;", sim=sim)
    router.start()

    def drain():
        sim.run(until=sim.now + 10.0)
    benchmark.pedantic(drain, rounds=1, iterations=1)
    assert int(router.read_handler("cnt.count")) == 20000


def test_parser_cost(benchmark):
    """Click-language parse + router build time for a catalog VNF."""
    entry = default_catalog().get("dpi")
    config = entry.render()

    def build():
        router = Router.from_config(config)
        router.device_map = {dev: Device(dev) for dev in entry.devices}
        return router
    benchmark(build)
